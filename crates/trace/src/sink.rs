//! Streaming trace export: the [`TraceSink`] trait and the incremental
//! JSONL writer.
//!
//! A sink receives the recorder's events in **chunks** — whenever the ring
//! buffer fills, on an explicit [`TraceBuilder::flush`], and once more at
//! [`TraceBuilder::finish`] — and serializes them as they arrive, so a
//! fleet-scale run is observable with bounded memory and **zero dropped
//! events**. Every writer is a pure function of the event sequence plus
//! its own internal state (never of where the chunk boundaries fell), so
//! the streamed bytes are identical to the buffered export of the same
//! recording: the buffered exporters ([`Trace::to_jsonl`],
//! [`Trace::to_chrome_json`]) are implemented as a single-chunk stream
//! through the very same writers. That identity is what lets the existing
//! determinism gates extend to streaming unchanged.
//!
//! [`TraceBuilder::flush`]: crate::TraceBuilder::flush
//! [`TraceBuilder::finish`]: crate::TraceBuilder::finish
//! [`Trace::to_jsonl`]: crate::Trace::to_jsonl
//! [`Trace::to_chrome_json`]: crate::Trace::to_chrome_json

use crate::event::{EventKind, TraceEvent};
use crate::label::LabelSet;
use crate::trace::Track;
use std::io::{self, Write};
use std::sync::{Arc, Mutex};

/// End-of-stream totals handed to [`TraceSink::finish`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamSummary {
    /// Total events written across all chunks.
    pub events: u64,
    /// Events lost to ring-buffer overwrite (always 0 while a sink is
    /// attached and healthy — draining replaces dropping).
    pub dropped: u64,
    /// The recorder's global sim-time cursor at finish.
    pub end_cursor: u64,
}

/// A streaming consumer of trace events.
///
/// Contract: `chunk` is called zero or more times with strictly
/// consecutive event runs (no event is delivered twice, none is skipped),
/// then `finish` exactly once. `tracks` and `symbols` are the recorder's
/// *full* intern tables at drain time — they only append, so ids seen in
/// earlier chunks stay valid.
pub trait TraceSink {
    /// Consumes the next run of events.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer; the recorder
    /// records the first error and detaches the sink.
    fn chunk(
        &mut self,
        tracks: &[Track],
        symbols: &[String],
        events: &[TraceEvent],
    ) -> io::Result<()>;

    /// Terminates the stream with end-of-run totals.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    fn finish(&mut self, summary: &StreamSummary) -> io::Result<()>;
}

/// Incremental JSONL writer: one self-describing JSON object per line.
///
/// Line vocabulary (see `crates/trace/README.md` for the full schema):
///
/// * `{"type":"track","id":N,"name":…,"host":bool}` — emitted lazily,
///   immediately before the first event that references the track;
/// * `{"type":"span"|"instant"|"counter",…}` — one per event, with
///   optional `"arg"` and `"labels"` objects;
/// * `{"type":"summary","events":N,"dropped":N,"end_cursor":N}` — the
///   final line.
///
/// All timestamps are raw sim/host nanoseconds (no unit conversion), so
/// the lines are loss-free with respect to the recorder.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    out: W,
    track_emitted: Vec<bool>,
}

impl<W: Write> JsonlSink<W> {
    /// Creates a writer over `out`.
    pub fn new(out: W) -> Self {
        JsonlSink {
            out,
            track_emitted: Vec::new(),
        }
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn chunk(
        &mut self,
        tracks: &[Track],
        symbols: &[String],
        events: &[TraceEvent],
    ) -> io::Result<()> {
        if self.track_emitted.len() < tracks.len() {
            self.track_emitted.resize(tracks.len(), false);
        }
        let mut line = String::with_capacity(128);
        for ev in events {
            let tid = ev.track.0 as usize;
            if !self.track_emitted[tid] {
                self.track_emitted[tid] = true;
                let t = &tracks[tid];
                line.clear();
                line.push_str("{\"type\":\"track\",\"id\":");
                line.push_str(&tid.to_string());
                line.push_str(",\"name\":\"");
                line.push_str(&escape(&t.name));
                line.push_str("\",\"host\":");
                line.push_str(if t.host { "true" } else { "false" });
                line.push_str("}\n");
                self.out.write_all(line.as_bytes())?;
            }
            line.clear();
            let kind = match ev.kind {
                EventKind::Span { .. } => "span",
                EventKind::Instant => "instant",
                EventKind::Counter { .. } => "counter",
            };
            line.push_str("{\"type\":\"");
            line.push_str(kind);
            line.push_str("\",\"track\":");
            line.push_str(&tid.to_string());
            line.push_str(",\"cat\":\"");
            line.push_str(ev.cat.name());
            line.push_str("\",\"name\":\"");
            line.push_str(&escape(&ev.name));
            line.push_str("\",\"ts\":");
            line.push_str(&ev.ts.to_string());
            match ev.kind {
                EventKind::Span { dur } => {
                    line.push_str(",\"dur\":");
                    line.push_str(&dur.to_string());
                }
                EventKind::Instant => {}
                EventKind::Counter { value } => {
                    line.push_str(",\"value\":");
                    line.push_str(&number(value));
                }
            }
            if let Some((key, value)) = ev.arg {
                line.push_str(",\"arg\":{\"");
                line.push_str(&escape(key));
                line.push_str("\":");
                line.push_str(&number(value));
                line.push('}');
            }
            push_labels_object(&mut line, ev.labels, symbols);
            line.push_str("}\n");
            self.out.write_all(line.as_bytes())?;
        }
        Ok(())
    }

    fn finish(&mut self, summary: &StreamSummary) -> io::Result<()> {
        let line = format!(
            "{{\"type\":\"summary\",\"events\":{},\"dropped\":{},\"end_cursor\":{}}}\n",
            summary.events, summary.dropped, summary.end_cursor
        );
        self.out.write_all(line.as_bytes())?;
        self.out.flush()
    }
}

/// Appends `,"labels":{"dim":"value",…}` (dims in [`Dim::ALL`] order) when
/// the set is non-empty.
///
/// [`Dim::ALL`]: crate::Dim::ALL
pub(crate) fn push_labels_object(out: &mut String, labels: LabelSet, symbols: &[String]) {
    if labels.is_empty() {
        return;
    }
    out.push_str(",\"labels\":{");
    let mut first = true;
    for (dim, sym) in labels.iter() {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('"');
        out.push_str(dim.key());
        out.push_str("\":\"");
        out.push_str(&escape(&symbols[sym as usize]));
        out.push('"');
    }
    out.push('}');
}

/// Deterministic JSON number formatting for counter values. Finite floats
/// use Rust's shortest round-trip `Display`; non-finite values (invalid
/// JSON) degrade to 0.
pub(crate) fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Minimal JSON string escaping (quotes, backslash, control characters).
pub(crate) fn escape(s: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A clonable in-memory byte buffer implementing [`std::io::Write`].
///
/// Sinks are boxed and moved into the recorder, so a caller that wants
/// the bytes back (tests, byte-identity gates) writes into one handle and
/// reads from its clone after the stream finishes.
#[derive(Debug, Clone, Default)]
pub struct SharedBuffer(Arc<Mutex<Vec<u8>>>);

impl SharedBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        SharedBuffer::default()
    }

    /// A snapshot of the bytes written so far.
    pub fn contents(&self) -> Vec<u8> {
        self.0
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .clone()
    }

    /// The written bytes as UTF-8 (every built-in sink emits UTF-8).
    ///
    /// # Panics
    ///
    /// Panics if the buffer holds invalid UTF-8.
    pub fn into_string(&self) -> String {
        String::from_utf8(self.contents()).expect("sink output is UTF-8")
    }
}

impl Write for SharedBuffer {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Category, TraceBuilder, TraceConfig};

    #[test]
    fn jsonl_lines_cover_all_kinds_and_lazy_tracks() {
        let mut b = TraceBuilder::new(TraceConfig::default());
        let t = b.track("gpu");
        b.span_at(t, Category::Kernel, "k0", 0, 100);
        b.instant_at(t, Category::Mem, "spill", 5, Some(("bytes", 4096.0)));
        b.counter_at("faults", 7, 3.5);
        let trace = b.finish();
        let out = trace.to_jsonl();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(
            lines[0],
            "{\"type\":\"track\",\"id\":0,\"name\":\"gpu\",\"host\":false}"
        );
        assert_eq!(
            lines[1],
            "{\"type\":\"span\",\"track\":0,\"cat\":\"kernel\",\"name\":\"k0\",\"ts\":0,\"dur\":100}"
        );
        assert_eq!(
            lines[2],
            "{\"type\":\"instant\",\"track\":0,\"cat\":\"mem\",\"name\":\"spill\",\"ts\":5,\
             \"arg\":{\"bytes\":4096}}"
        );
        // The metrics track is interned on first counter use, so its
        // track line appears immediately before the counter line.
        assert_eq!(
            lines[3],
            "{\"type\":\"track\",\"id\":1,\"name\":\"metrics\",\"host\":false}"
        );
        assert_eq!(
            lines[4],
            "{\"type\":\"counter\",\"track\":1,\"cat\":\"counter\",\"name\":\"faults\",\"ts\":7,\
             \"value\":3.5}"
        );
        assert_eq!(
            lines[5],
            "{\"type\":\"summary\",\"events\":3,\"dropped\":0,\"end_cursor\":0}"
        );
        assert_eq!(lines.len(), 6);
    }

    #[test]
    fn zero_event_stream_is_just_the_summary() {
        let trace = TraceBuilder::new(TraceConfig::default()).finish();
        assert_eq!(
            trace.to_jsonl(),
            "{\"type\":\"summary\",\"events\":0,\"dropped\":0,\"end_cursor\":0}\n"
        );
    }

    #[test]
    fn shared_buffer_round_trips_across_clones() {
        let buf = SharedBuffer::new();
        let mut handle = buf.clone();
        handle.write_all(b"hello").unwrap();
        assert_eq!(buf.into_string(), "hello");
    }
}
