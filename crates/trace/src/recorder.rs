//! [`TraceBuilder`] — the bounded-ring-buffer event recorder, optionally
//! draining into a streaming [`TraceSink`].

use crate::config::TraceConfig;
use crate::event::{Category, EventKind, TraceEvent, TrackId};
use crate::label::{Dim, LabelSet};
use crate::selfprof;
use crate::sink::{StreamSummary, TraceSink};
use crate::trace::{Trace, Track};
use std::borrow::Cow;
use std::collections::HashMap;
use std::time::Instant;

/// Records events into a bounded ring buffer.
///
/// The builder keeps two notions of position in simulated time:
///
/// * a **global cursor** ([`TraceBuilder::now`]) owned by whoever drives
///   the top-level pipeline (the runtime's run loop) and advanced by
///   [`TraceBuilder::phase_span`];
/// * a **per-track detail cursor** used by [`TraceBuilder::detail_span`]:
///   lower layers (DMA chunks, fault batches, sampled blocks) lay their
///   sub-events out sequentially *within* the current phase without having
///   to know absolute time. A detail span starts at
///   `max(track_cursor, now)`, so advancing the global cursor pulls every
///   detail lane forward to the new phase.
///
/// # Buffering vs streaming
///
/// Without a sink, a full ring overwrites its oldest events (counted as
/// [dropped](Trace::dropped)). With a sink attached
/// ([`TraceBuilder::with_sink`]), a full ring instead **drains**: the
/// buffered events are handed to the sink as one chunk and the buffer is
/// cleared, so arbitrarily long runs stream with bounded memory and zero
/// drops. [`TraceBuilder::flush`] forces a chunk boundary explicitly.
///
/// # Labels
///
/// The builder carries an ambient label context
/// ([`TraceBuilder::set_label`]); every event recorded through the emit
/// methods is stamped with it. Absorbed events keep the labels they were
/// recorded with.
///
/// # Example
///
/// ```
/// use hetsim_trace::{Category, TraceBuilder, TraceConfig};
/// let mut b = TraceBuilder::new(TraceConfig::default());
/// let host = b.track("host");
/// let dma = b.track("dma");
/// // Two DMA chunks inside one memcpy phase:
/// b.detail_span(dma, Category::Dma, "chunk0", 300, None);
/// b.detail_span(dma, Category::Dma, "chunk1", 300, None);
/// let (start, end) = b.phase_span(host, Category::Memcpy, "h2d", 600);
/// assert_eq!((start, end), (0, 600));
/// assert_eq!(b.now(), 600);
/// ```
pub struct TraceBuilder {
    config: TraceConfig,
    tracks: Vec<Track>,
    track_index: HashMap<String, TrackId>,
    symbols: Vec<String>,
    symbol_index: HashMap<String, u16>,
    context: LabelSet,
    events: Vec<TraceEvent>,
    head: usize,
    dropped: u64,
    streamed: u64,
    now: u64,
    cursors: Vec<u64>,
    counter_track: Option<TrackId>,
    last_counter_ts: HashMap<TrackId, HashMap<String, u64>>,
    sink: Option<Box<dyn TraceSink>>,
    sink_error: Option<String>,
    export_origin: Instant,
}

impl std::fmt::Debug for TraceBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceBuilder")
            .field("config", &self.config)
            .field("tracks", &self.tracks.len())
            .field("events", &self.events.len())
            .field("streamed", &self.streamed)
            .field("dropped", &self.dropped)
            .field("now", &self.now)
            .field("sink", &self.sink.is_some())
            .finish_non_exhaustive()
    }
}

impl TraceBuilder {
    /// Creates an empty recorder.
    pub fn new(config: TraceConfig) -> Self {
        TraceBuilder {
            config,
            tracks: Vec::new(),
            track_index: HashMap::new(),
            symbols: Vec::new(),
            symbol_index: HashMap::new(),
            context: LabelSet::EMPTY,
            events: Vec::new(),
            head: 0,
            dropped: 0,
            streamed: 0,
            now: 0,
            cursors: Vec::new(),
            counter_track: None,
            last_counter_ts: HashMap::new(),
            sink: None,
            sink_error: None,
            export_origin: Instant::now(),
        }
    }

    /// Attaches a streaming sink (builder style): completed events drain
    /// to it at every chunk boundary instead of being overwritten when
    /// the ring fills.
    pub fn with_sink(mut self, sink: Box<dyn TraceSink>) -> Self {
        self.attach_sink(sink);
        self
    }

    /// Attaches a streaming sink, replacing any previous one.
    pub fn attach_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.sink = Some(sink);
    }

    /// Whether a sink is attached (and healthy — a write error detaches).
    pub fn streaming(&self) -> bool {
        self.sink.is_some()
    }

    /// The first sink write error, if the attached sink failed. After an
    /// error the sink is detached and the recorder falls back to plain
    /// ring buffering.
    pub fn sink_error(&self) -> Option<&str> {
        self.sink_error.as_deref()
    }

    /// Events already handed to the sink.
    pub fn streamed(&self) -> u64 {
        self.streamed
    }

    /// The configuration.
    pub fn config(&self) -> &TraceConfig {
        &self.config
    }

    /// Interns a sim-time track (lane) by name.
    pub fn track(&mut self, name: &str) -> TrackId {
        self.intern(name, false)
    }

    /// Interns a host wall-clock track (rendered as a separate Chrome
    /// process so sim-time and wall-clock axes don't collide).
    pub fn host_track(&mut self, name: &str) -> TrackId {
        self.intern(name, true)
    }

    fn intern(&mut self, name: &str, host: bool) -> TrackId {
        if let Some(&id) = self.track_index.get(name) {
            return id;
        }
        let id = TrackId(u16::try_from(self.tracks.len()).expect("too many tracks"));
        self.tracks.push(Track {
            name: name.to_string(),
            host,
        });
        self.track_index.insert(name.to_string(), id);
        self.cursors.push(0);
        id
    }

    // ---- labels ----

    /// Interns a label value into the symbol table.
    fn intern_symbol(&mut self, value: &str) -> u16 {
        if let Some(&sym) = self.symbol_index.get(value) {
            return sym;
        }
        let sym = u16::try_from(self.symbols.len()).expect("too many label values");
        self.symbols.push(value.to_string());
        self.symbol_index.insert(value.to_string(), sym);
        sym
    }

    /// Binds `dim` to `value` in the ambient label context: every event
    /// recorded from now on is stamped with it, until the dimension is
    /// cleared or the context is restored.
    pub fn set_label(&mut self, dim: Dim, value: &str) {
        let sym = self.intern_symbol(value);
        self.context.set(dim, sym);
    }

    /// Unsets `dim` in the ambient label context.
    pub fn clear_label(&mut self, dim: Dim) {
        self.context.clear(dim);
    }

    /// The current ambient label context (save before scoped overrides).
    pub fn label_context(&self) -> LabelSet {
        self.context
    }

    /// Restores a context previously returned by
    /// [`TraceBuilder::label_context`]. Symbol indices stay valid because
    /// the symbol table only appends.
    pub fn set_label_context(&mut self, context: LabelSet) {
        self.context = context;
    }

    /// The interned label values, indexed by the symbols in each event's
    /// [`LabelSet`].
    pub fn symbols(&self) -> &[String] {
        &self.symbols
    }

    // ---- cursors ----

    /// The global sim-time cursor.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Moves the global cursor to an absolute time.
    pub fn set_now(&mut self, ns: u64) {
        self.now = ns;
    }

    /// Advances the global cursor by `dur`, returning the span start.
    pub fn advance(&mut self, dur: u64) -> u64 {
        let start = self.now;
        self.now += dur;
        start
    }

    // ---- emission ----

    /// Emits a span at an explicit `[start, start + dur)` interval.
    pub fn span_at(
        &mut self,
        track: TrackId,
        cat: Category,
        name: impl Into<Cow<'static, str>>,
        start: u64,
        dur: u64,
    ) {
        self.span_with(track, cat, name, start, dur, None);
    }

    /// [`TraceBuilder::span_at`] with one named numeric argument.
    pub fn span_with(
        &mut self,
        track: TrackId,
        cat: Category,
        name: impl Into<Cow<'static, str>>,
        start: u64,
        dur: u64,
        arg: Option<(&'static str, f64)>,
    ) {
        self.push(TraceEvent {
            track,
            cat,
            name: name.into(),
            ts: start,
            kind: EventKind::Span { dur },
            arg,
            labels: self.context,
        });
    }

    /// Emits a top-level phase span `[now, now + dur)` on `track` and
    /// advances the global cursor. Returns `(start, end)`.
    pub fn phase_span(
        &mut self,
        track: TrackId,
        cat: Category,
        name: impl Into<Cow<'static, str>>,
        dur: u64,
    ) -> (u64, u64) {
        let start = self.advance(dur);
        self.span_at(track, cat, name, start, dur);
        (start, start + dur)
    }

    /// Emits a detail span laid out sequentially on `track`, starting at
    /// `max(track cursor, now)`. Returns `(start, end)`.
    pub fn detail_span(
        &mut self,
        track: TrackId,
        cat: Category,
        name: impl Into<Cow<'static, str>>,
        dur: u64,
        arg: Option<(&'static str, f64)>,
    ) -> (u64, u64) {
        let start = self.cursors[track.0 as usize].max(self.now);
        self.cursors[track.0 as usize] = start + dur;
        self.span_with(track, cat, name, start, dur, arg);
        (start, start + dur)
    }

    /// Emits a zero-width marker at the global cursor.
    pub fn instant(
        &mut self,
        track: TrackId,
        cat: Category,
        name: impl Into<Cow<'static, str>>,
        arg: Option<(&'static str, f64)>,
    ) {
        let ts = self.cursors[track.0 as usize].max(self.now);
        self.instant_at(track, cat, name, ts, arg);
    }

    /// Emits a zero-width marker at an explicit time.
    pub fn instant_at(
        &mut self,
        track: TrackId,
        cat: Category,
        name: impl Into<Cow<'static, str>>,
        ts: u64,
        arg: Option<(&'static str, f64)>,
    ) {
        self.push(TraceEvent {
            track,
            cat,
            name: name.into(),
            ts,
            kind: EventKind::Instant,
            arg,
            labels: self.context,
        });
    }

    /// Samples a named counter at the global cursor, on the shared
    /// `metrics` track. Samples closer than
    /// [`TraceConfig::counter_interval`] to the previous kept sample of
    /// the same counter *on the same track* are dropped (the first sample
    /// is always kept).
    pub fn counter(&mut self, name: impl Into<Cow<'static, str>>, value: f64) {
        let ts = self.now;
        self.counter_at(name, ts, value);
    }

    /// Samples a named counter at an explicit time, on the shared
    /// `metrics` track.
    pub fn counter_at(&mut self, name: impl Into<Cow<'static, str>>, ts: u64, value: f64) {
        let track = match self.counter_track {
            Some(t) => t,
            None => {
                let t = self.intern("metrics", false);
                self.counter_track = Some(t);
                t
            }
        };
        self.counter_on_at(track, name, ts, value);
    }

    /// Samples a named counter on an explicit track at the global cursor.
    /// Subsystems with their own lane (`uvm`, `gpu.blocks`, …) use this so
    /// their counters render next to their spans.
    pub fn counter_on(&mut self, track: TrackId, name: impl Into<Cow<'static, str>>, value: f64) {
        let ts = self.now;
        self.counter_on_at(track, name, ts, value);
    }

    /// Samples a named counter on an explicit track at an explicit time.
    ///
    /// Decimation is keyed on `(track, name)`: same-timestamp samples of
    /// the same counter name on *different* tracks are independent and
    /// never coalesced.
    pub fn counter_on_at(
        &mut self,
        track: TrackId,
        name: impl Into<Cow<'static, str>>,
        ts: u64,
        value: f64,
    ) {
        let name = name.into();
        if let Some(interval) = self.config.counter_interval {
            // Nested map keeps the decimation lookup allocation-free on
            // the hot path: a `String` key is only built the first time a
            // `(track, name)` pair appears.
            let per_track = self.last_counter_ts.entry(track).or_default();
            match per_track.get_mut(name.as_ref()) {
                Some(last) if ts < last.saturating_add(interval) => return,
                Some(last) => *last = ts,
                None => {
                    per_track.insert(name.clone().into_owned(), ts);
                }
            }
        }
        self.push(TraceEvent {
            track,
            cat: Category::Counter,
            name,
            ts,
            kind: EventKind::Counter { value },
            arg: None,
            labels: self.context,
        });
    }

    /// Appends every event of `other` (tracks re-interned by name). Used
    /// to fold an owned schedule trace into a surrounding session.
    pub fn absorb(&mut self, other: &Trace) {
        self.absorb_at(other, 0);
    }

    /// [`TraceBuilder::absorb`] with every sim-track timestamp shifted by
    /// `offset` nanoseconds, placing the other trace's time zero at a
    /// point on this recording's timeline. Host-track timestamps are kept
    /// as-is (wall clock has its own origin).
    ///
    /// Absorbed events keep the labels they were recorded with (label
    /// symbols are re-interned into this recording's table); the ambient
    /// label context is *not* stamped over them.
    ///
    /// The global cursor advances past the absorbed recording's own
    /// [`Trace::end_cursor`] (shifted by `offset`), so repeated
    /// `absorb_at(t, builder.now())` calls lay independent recordings out
    /// back to back — the merge step of parallel per-worker tracing.
    pub fn absorb_at(&mut self, other: &Trace, offset: u64) {
        let track_map: Vec<TrackId> = other
            .tracks()
            .iter()
            .map(|t| self.intern(&t.name, t.host))
            .collect();
        let symbol_map: Vec<u16> = other
            .symbols()
            .iter()
            .map(|s| self.intern_symbol(s))
            .collect();
        // Merge fast paths: when the other trace's symbols landed on the
        // same ids here (the common case — per-mode traces share one
        // label vocabulary), per-event label rebuilding is a no-op and is
        // skipped wholesale. Track remaps rarely coincide, so those stay
        // per-event, but unlabeled events skip the label loop either way.
        let symbols_identity = symbol_map.iter().enumerate().all(|(i, &s)| s as usize == i);
        self.events.reserve(
            other
                .events()
                .len()
                .min(self.config.capacity.saturating_sub(self.events.len())),
        );
        for ev in other.events() {
            let src = ev.track.0 as usize;
            let mut ev = ev.clone();
            ev.track = track_map[src];
            if !other.tracks()[src].host {
                ev.ts += offset;
            }
            if !symbols_identity && !ev.labels.is_empty() {
                let mut labels = LabelSet::EMPTY;
                for (dim, sym) in ev.labels.iter() {
                    labels.set(dim, symbol_map[sym as usize]);
                }
                ev.labels = labels;
            }
            self.push(ev);
        }
        self.now = self.now.max(offset + other.end_cursor());
    }

    fn push(&mut self, ev: TraceEvent) {
        if self.events.len() >= self.config.capacity {
            // Streaming replaces dropping: hand the full buffer to the
            // sink as one chunk, then append into the cleared buffer.
            self.drain_to_sink();
        }
        if self.events.len() < self.config.capacity {
            self.events.push(ev);
        } else {
            self.events[self.head] = ev;
            self.head = (self.head + 1) % self.config.capacity;
            self.dropped += 1;
        }
    }

    /// Forces a chunk boundary: every buffered event is handed to the
    /// attached sink now. A no-op without a sink (or after a sink error).
    pub fn flush(&mut self) {
        self.drain_to_sink();
    }

    fn drain_to_sink(&mut self) {
        let Some(sink) = self.sink.as_mut() else {
            return;
        };
        if self.events.is_empty() {
            return;
        }
        let started = self.config.self_profile.then(Instant::now);
        let chunk_len = self.events.len();
        let result = sink.chunk(&self.tracks, &self.symbols, &self.events);
        self.streamed += chunk_len as u64;
        self.events.clear();
        self.head = 0;
        if let Err(e) = result {
            if self.sink_error.is_none() {
                self.sink_error = Some(e.to_string());
            }
            self.sink = None;
            return;
        }
        if let Some(t0) = started {
            selfprof::export_overhead_span(self, self.export_origin, t0, chunk_len);
        }
    }

    /// Number of buffered (not yet drained) events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing is currently buffered.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Finalizes the recording into an immutable [`Trace`], restoring
    /// chronological append order if the ring wrapped. With a sink
    /// attached, the remaining buffered events are drained as the final
    /// chunk and [`TraceSink::finish`] is called with the stream totals;
    /// the returned trace then holds no events itself but reports them
    /// via [`Trace::streamed`].
    pub fn finish(mut self) -> Trace {
        if self.head > 0 {
            self.events.rotate_left(self.head);
            self.head = 0;
        }
        if self.sink.is_some() {
            self.drain_to_sink();
            // The drain above may have recorded one exporter-overhead
            // span; flush it without measuring the flush itself.
            self.config.self_profile = false;
            self.drain_to_sink();
            let summary = StreamSummary {
                events: self.streamed,
                dropped: self.dropped,
                end_cursor: self.now,
            };
            if let Some(mut sink) = self.sink.take() {
                if let Err(e) = sink.finish(&summary) {
                    if self.sink_error.is_none() {
                        self.sink_error = Some(e.to_string());
                    }
                }
            }
        }
        Trace::new(
            self.tracks,
            self.symbols,
            self.events,
            self.dropped,
            self.streamed,
            self.now,
            self.sink_error,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{JsonlSink, SharedBuffer};

    #[test]
    fn tracks_are_interned_once() {
        let mut b = TraceBuilder::new(TraceConfig::default());
        let a = b.track("gpu");
        let c = b.track("gpu");
        assert_eq!(a, c);
        assert_ne!(a, b.track("dma"));
    }

    #[test]
    fn phase_spans_advance_the_clock() {
        let mut b = TraceBuilder::new(TraceConfig::default());
        let t = b.track("host");
        assert_eq!(b.phase_span(t, Category::Alloc, "malloc", 100), (0, 100));
        assert_eq!(b.phase_span(t, Category::Alloc, "free", 50), (100, 150));
        assert_eq!(b.now(), 150);
    }

    #[test]
    fn detail_spans_tile_within_a_phase() {
        let mut b = TraceBuilder::new(TraceConfig::default());
        let dma = b.track("dma");
        let host = b.track("host");
        b.set_now(1_000);
        assert_eq!(
            b.detail_span(dma, Category::Dma, "c0", 10, None),
            (1_000, 1_010)
        );
        assert_eq!(
            b.detail_span(dma, Category::Dma, "c1", 10, None),
            (1_010, 1_020)
        );
        // Advancing the phase pulls the detail lane forward.
        b.phase_span(host, Category::Memcpy, "h2d", 5_000);
        assert_eq!(
            b.detail_span(dma, Category::Dma, "c2", 10, None),
            (6_000, 6_010)
        );
    }

    #[test]
    fn ring_buffer_drops_oldest() {
        let mut b = TraceBuilder::new(TraceConfig::default().with_capacity(3));
        let t = b.track("x");
        for i in 0..5u64 {
            b.span_at(t, Category::Kernel, format!("s{i}"), i * 10, 1);
        }
        let trace = b.finish();
        assert_eq!(trace.dropped(), 2);
        let names: Vec<_> = trace.events().iter().map(|e| e.name.as_ref()).collect();
        assert_eq!(names, vec!["s2", "s3", "s4"], "oldest dropped, order kept");
    }

    #[test]
    fn sink_drains_instead_of_dropping() {
        let buf = SharedBuffer::new();
        let mut b = TraceBuilder::new(TraceConfig::default().with_capacity(3))
            .with_sink(Box::new(JsonlSink::new(buf.clone())));
        let t = b.track("x");
        for i in 0..10u64 {
            b.span_at(t, Category::Kernel, format!("s{i}"), i * 10, 1);
        }
        let trace = b.finish();
        assert_eq!(trace.dropped(), 0, "streaming never drops");
        assert_eq!(trace.streamed(), 10);
        assert!(trace.is_empty(), "all events went to the sink");
        let out = buf.into_string();
        for i in 0..10u64 {
            assert!(out.contains(&format!("\"name\":\"s{i}\"")), "s{i} in {out}");
        }
        assert!(
            out.ends_with("{\"type\":\"summary\",\"events\":10,\"dropped\":0,\"end_cursor\":0}\n")
        );
    }

    #[test]
    fn explicit_flush_is_a_chunk_boundary() {
        let buf = SharedBuffer::new();
        let mut b = TraceBuilder::new(TraceConfig::default())
            .with_sink(Box::new(JsonlSink::new(buf.clone())));
        let t = b.track("x");
        b.span_at(t, Category::Kernel, "early", 0, 1);
        assert!(buf.contents().is_empty(), "nothing written before flush");
        b.flush();
        assert!(buf.into_string().contains("\"name\":\"early\""));
        assert_eq!(b.len(), 0);
        assert_eq!(b.streamed(), 1);
    }

    #[test]
    fn counter_interval_decimates() {
        let mut b = TraceBuilder::new(TraceConfig::default().with_counter_interval(100));
        b.counter_at("faults", 0, 1.0);
        b.counter_at("faults", 50, 2.0); // dropped: too close
        b.counter_at("faults", 100, 3.0);
        b.counter_at("other", 50, 9.0); // independent counter: kept
        let trace = b.finish();
        let faults = trace.counter_series("faults");
        assert_eq!(faults, vec![(0, 1.0), (100, 3.0)]);
        assert_eq!(trace.counter_series("other").len(), 1);
    }

    #[test]
    fn counter_decimation_is_per_track() {
        // The dedup key is (track, name): same-timestamp samples of the
        // same counter name on different tracks must both survive.
        let mut b = TraceBuilder::new(TraceConfig::default().with_counter_interval(100));
        let uvm = b.track("uvm");
        let gpu = b.track("gpu");
        b.counter_on_at(uvm, "busy", 0, 1.0);
        b.counter_on_at(gpu, "busy", 0, 2.0); // different track: kept
        b.counter_on_at(uvm, "busy", 50, 3.0); // same track, too close: dropped
        let trace = b.finish();
        assert_eq!(trace.counter_series("busy"), vec![(0, 1.0), (0, 2.0)]);
    }

    #[test]
    fn labels_stamp_ambient_context() {
        let mut b = TraceBuilder::new(TraceConfig::default());
        let t = b.track("runtime");
        b.set_label(Dim::Mode, "uvm");
        b.span_at(t, Category::Kernel, "k", 0, 10);
        b.counter("uvm.page_faults", 4.0);
        b.clear_label(Dim::Mode);
        b.span_at(t, Category::Kernel, "bare", 10, 10);
        let trace = b.finish();
        assert_eq!(trace.label(&trace.events()[0], Dim::Mode), Some("uvm"));
        assert_eq!(trace.label(&trace.events()[1], Dim::Mode), Some("uvm"));
        assert_eq!(trace.label(&trace.events()[2], Dim::Mode), None);
    }

    #[test]
    fn label_context_save_restore() {
        let mut b = TraceBuilder::new(TraceConfig::default());
        b.set_label(Dim::Job, "3");
        let saved = b.label_context();
        b.set_label(Dim::Mode, "async");
        b.set_label(Dim::Job, "4");
        b.set_label_context(saved);
        let t = b.track("x");
        b.span_at(t, Category::Kernel, "k", 0, 1);
        let trace = b.finish();
        let ev = &trace.events()[0];
        assert_eq!(trace.label(ev, Dim::Job), Some("3"));
        assert_eq!(trace.label(ev, Dim::Mode), None);
    }

    #[test]
    fn absorb_reinterns_tracks() {
        let mut inner = TraceBuilder::new(TraceConfig::default());
        let t = inner.track("compute");
        inner.span_at(t, Category::Stream, "k0", 0, 10);
        let inner = inner.finish();

        let mut outer = TraceBuilder::new(TraceConfig::default());
        outer.track("host"); // occupy id 0 so re-interning must remap
        outer.absorb(&inner);
        let trace = outer.finish();
        let ev = &trace.events()[0];
        assert_eq!(trace.track_name(ev.track), "compute");
    }

    #[test]
    fn absorb_reinterns_label_symbols() {
        let mut inner = TraceBuilder::new(TraceConfig::default());
        inner.set_label(Dim::Mode, "uvm");
        let t = inner.track("runtime");
        inner.span_at(t, Category::Kernel, "k", 0, 10);
        let inner = inner.finish();

        let mut outer = TraceBuilder::new(TraceConfig::default());
        // Occupy symbol slots so the absorbed indices must be remapped.
        outer.set_label(Dim::Device, "a100");
        outer.set_label(Dim::Stream, "h2d");
        outer.clear_label(Dim::Device);
        outer.clear_label(Dim::Stream);
        outer.absorb(&inner);
        let trace = outer.finish();
        let ev = &trace.events()[0];
        assert_eq!(trace.label(ev, Dim::Mode), Some("uvm"));
        assert_eq!(trace.label(ev, Dim::Device), None);
    }
}
