//! [`TraceBuilder`] — the bounded-ring-buffer event recorder.

use crate::config::TraceConfig;
use crate::event::{Category, EventKind, TraceEvent, TrackId};
use crate::trace::{Trace, Track};
use std::borrow::Cow;
use std::collections::HashMap;

/// Records events into a bounded ring buffer.
///
/// The builder keeps two notions of position in simulated time:
///
/// * a **global cursor** ([`TraceBuilder::now`]) owned by whoever drives
///   the top-level pipeline (the runtime's run loop) and advanced by
///   [`TraceBuilder::phase_span`];
/// * a **per-track detail cursor** used by [`TraceBuilder::detail_span`]:
///   lower layers (DMA chunks, fault batches, sampled blocks) lay their
///   sub-events out sequentially *within* the current phase without having
///   to know absolute time. A detail span starts at
///   `max(track_cursor, now)`, so advancing the global cursor pulls every
///   detail lane forward to the new phase.
///
/// # Example
///
/// ```
/// use hetsim_trace::{Category, TraceBuilder, TraceConfig};
/// let mut b = TraceBuilder::new(TraceConfig::default());
/// let host = b.track("host");
/// let dma = b.track("dma");
/// // Two DMA chunks inside one memcpy phase:
/// b.detail_span(dma, Category::Dma, "chunk0", 300, None);
/// b.detail_span(dma, Category::Dma, "chunk1", 300, None);
/// let (start, end) = b.phase_span(host, Category::Memcpy, "h2d", 600);
/// assert_eq!((start, end), (0, 600));
/// assert_eq!(b.now(), 600);
/// ```
#[derive(Debug, Clone)]
pub struct TraceBuilder {
    config: TraceConfig,
    tracks: Vec<Track>,
    track_index: HashMap<String, TrackId>,
    events: Vec<TraceEvent>,
    head: usize,
    dropped: u64,
    now: u64,
    cursors: Vec<u64>,
    counter_track: Option<TrackId>,
    last_counter_ts: HashMap<String, u64>,
}

impl TraceBuilder {
    /// Creates an empty recorder.
    pub fn new(config: TraceConfig) -> Self {
        TraceBuilder {
            config,
            tracks: Vec::new(),
            track_index: HashMap::new(),
            events: Vec::new(),
            head: 0,
            dropped: 0,
            now: 0,
            cursors: Vec::new(),
            counter_track: None,
            last_counter_ts: HashMap::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &TraceConfig {
        &self.config
    }

    /// Interns a sim-time track (lane) by name.
    pub fn track(&mut self, name: &str) -> TrackId {
        self.intern(name, false)
    }

    /// Interns a host wall-clock track (rendered as a separate Chrome
    /// process so sim-time and wall-clock axes don't collide).
    pub fn host_track(&mut self, name: &str) -> TrackId {
        self.intern(name, true)
    }

    fn intern(&mut self, name: &str, host: bool) -> TrackId {
        if let Some(&id) = self.track_index.get(name) {
            return id;
        }
        let id = TrackId(u16::try_from(self.tracks.len()).expect("too many tracks"));
        self.tracks.push(Track {
            name: name.to_string(),
            host,
        });
        self.track_index.insert(name.to_string(), id);
        self.cursors.push(0);
        id
    }

    // ---- cursors ----

    /// The global sim-time cursor.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Moves the global cursor to an absolute time.
    pub fn set_now(&mut self, ns: u64) {
        self.now = ns;
    }

    /// Advances the global cursor by `dur`, returning the span start.
    pub fn advance(&mut self, dur: u64) -> u64 {
        let start = self.now;
        self.now += dur;
        start
    }

    // ---- emission ----

    /// Emits a span at an explicit `[start, start + dur)` interval.
    pub fn span_at(
        &mut self,
        track: TrackId,
        cat: Category,
        name: impl Into<Cow<'static, str>>,
        start: u64,
        dur: u64,
    ) {
        self.span_with(track, cat, name, start, dur, None);
    }

    /// [`TraceBuilder::span_at`] with one named numeric argument.
    pub fn span_with(
        &mut self,
        track: TrackId,
        cat: Category,
        name: impl Into<Cow<'static, str>>,
        start: u64,
        dur: u64,
        arg: Option<(&'static str, f64)>,
    ) {
        self.push(TraceEvent {
            track,
            cat,
            name: name.into(),
            ts: start,
            kind: EventKind::Span { dur },
            arg,
        });
    }

    /// Emits a top-level phase span `[now, now + dur)` on `track` and
    /// advances the global cursor. Returns `(start, end)`.
    pub fn phase_span(
        &mut self,
        track: TrackId,
        cat: Category,
        name: impl Into<Cow<'static, str>>,
        dur: u64,
    ) -> (u64, u64) {
        let start = self.advance(dur);
        self.span_at(track, cat, name, start, dur);
        (start, start + dur)
    }

    /// Emits a detail span laid out sequentially on `track`, starting at
    /// `max(track cursor, now)`. Returns `(start, end)`.
    pub fn detail_span(
        &mut self,
        track: TrackId,
        cat: Category,
        name: impl Into<Cow<'static, str>>,
        dur: u64,
        arg: Option<(&'static str, f64)>,
    ) -> (u64, u64) {
        let start = self.cursors[track.0 as usize].max(self.now);
        self.cursors[track.0 as usize] = start + dur;
        self.span_with(track, cat, name, start, dur, arg);
        (start, start + dur)
    }

    /// Emits a zero-width marker at the global cursor.
    pub fn instant(
        &mut self,
        track: TrackId,
        cat: Category,
        name: impl Into<Cow<'static, str>>,
        arg: Option<(&'static str, f64)>,
    ) {
        let ts = self.cursors[track.0 as usize].max(self.now);
        self.instant_at(track, cat, name, ts, arg);
    }

    /// Emits a zero-width marker at an explicit time.
    pub fn instant_at(
        &mut self,
        track: TrackId,
        cat: Category,
        name: impl Into<Cow<'static, str>>,
        ts: u64,
        arg: Option<(&'static str, f64)>,
    ) {
        self.push(TraceEvent {
            track,
            cat,
            name: name.into(),
            ts,
            kind: EventKind::Instant,
            arg,
        });
    }

    /// Samples a named counter at the global cursor. Samples closer than
    /// [`TraceConfig::counter_interval`] to the previous kept sample of
    /// the same counter are dropped (the first sample is always kept).
    pub fn counter(&mut self, name: impl Into<Cow<'static, str>>, value: f64) {
        let ts = self.now;
        self.counter_at(name, ts, value);
    }

    /// Samples a named counter at an explicit time.
    pub fn counter_at(&mut self, name: impl Into<Cow<'static, str>>, ts: u64, value: f64) {
        let name = name.into();
        if let Some(interval) = self.config.counter_interval {
            match self.last_counter_ts.get(name.as_ref()) {
                Some(&last) if ts < last.saturating_add(interval) => return,
                _ => {}
            }
            self.last_counter_ts.insert(name.to_string(), ts);
        }
        let track = match self.counter_track {
            Some(t) => t,
            None => {
                let t = self.intern("metrics", false);
                self.counter_track = Some(t);
                t
            }
        };
        self.push(TraceEvent {
            track,
            cat: Category::Counter,
            name,
            ts,
            kind: EventKind::Counter { value },
            arg: None,
        });
    }

    /// Appends every event of `other` (tracks re-interned by name). Used
    /// to fold an owned schedule trace into a surrounding session.
    pub fn absorb(&mut self, other: &Trace) {
        self.absorb_at(other, 0);
    }

    /// [`TraceBuilder::absorb`] with every sim-track timestamp shifted by
    /// `offset` nanoseconds, placing the other trace's time zero at a
    /// point on this recording's timeline. Host-track timestamps are kept
    /// as-is (wall clock has its own origin).
    ///
    /// The global cursor advances past the absorbed recording's own
    /// [`Trace::end_cursor`] (shifted by `offset`), so repeated
    /// `absorb_at(t, builder.now())` calls lay independent recordings out
    /// back to back — the merge step of parallel per-worker tracing.
    pub fn absorb_at(&mut self, other: &Trace, offset: u64) {
        let map: Vec<TrackId> = other
            .tracks()
            .iter()
            .map(|t| self.intern(&t.name, t.host))
            .collect();
        for ev in other.events() {
            let src = ev.track.0 as usize;
            let mut ev = ev.clone();
            ev.track = map[src];
            if !other.tracks()[src].host {
                ev.ts += offset;
            }
            self.push(ev);
        }
        self.now = self.now.max(offset + other.end_cursor());
    }

    fn push(&mut self, ev: TraceEvent) {
        if self.events.len() < self.config.capacity {
            self.events.push(ev);
        } else {
            self.events[self.head] = ev;
            self.head = (self.head + 1) % self.config.capacity;
            self.dropped += 1;
        }
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Finalizes the recording into an immutable [`Trace`], restoring
    /// chronological append order if the ring wrapped.
    pub fn finish(mut self) -> Trace {
        if self.head > 0 {
            self.events.rotate_left(self.head);
        }
        Trace::new(self.tracks, self.events, self.dropped, self.now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_are_interned_once() {
        let mut b = TraceBuilder::new(TraceConfig::default());
        let a = b.track("gpu");
        let c = b.track("gpu");
        assert_eq!(a, c);
        assert_ne!(a, b.track("dma"));
    }

    #[test]
    fn phase_spans_advance_the_clock() {
        let mut b = TraceBuilder::new(TraceConfig::default());
        let t = b.track("host");
        assert_eq!(b.phase_span(t, Category::Alloc, "malloc", 100), (0, 100));
        assert_eq!(b.phase_span(t, Category::Alloc, "free", 50), (100, 150));
        assert_eq!(b.now(), 150);
    }

    #[test]
    fn detail_spans_tile_within_a_phase() {
        let mut b = TraceBuilder::new(TraceConfig::default());
        let dma = b.track("dma");
        let host = b.track("host");
        b.set_now(1_000);
        assert_eq!(
            b.detail_span(dma, Category::Dma, "c0", 10, None),
            (1_000, 1_010)
        );
        assert_eq!(
            b.detail_span(dma, Category::Dma, "c1", 10, None),
            (1_010, 1_020)
        );
        // Advancing the phase pulls the detail lane forward.
        b.phase_span(host, Category::Memcpy, "h2d", 5_000);
        assert_eq!(
            b.detail_span(dma, Category::Dma, "c2", 10, None),
            (6_000, 6_010)
        );
    }

    #[test]
    fn ring_buffer_drops_oldest() {
        let mut b = TraceBuilder::new(TraceConfig::default().with_capacity(3));
        let t = b.track("x");
        for i in 0..5u64 {
            b.span_at(t, Category::Kernel, format!("s{i}"), i * 10, 1);
        }
        let trace = b.finish();
        assert_eq!(trace.dropped(), 2);
        let names: Vec<_> = trace.events().iter().map(|e| e.name.as_ref()).collect();
        assert_eq!(names, vec!["s2", "s3", "s4"], "oldest dropped, order kept");
    }

    #[test]
    fn counter_interval_decimates() {
        let mut b = TraceBuilder::new(TraceConfig::default().with_counter_interval(100));
        b.counter_at("faults", 0, 1.0);
        b.counter_at("faults", 50, 2.0); // dropped: too close
        b.counter_at("faults", 100, 3.0);
        b.counter_at("other", 50, 9.0); // independent counter: kept
        let trace = b.finish();
        let faults = trace.counter_series("faults");
        assert_eq!(faults, vec![(0, 1.0), (100, 3.0)]);
        assert_eq!(trace.counter_series("other").len(), 1);
    }

    #[test]
    fn absorb_reinterns_tracks() {
        let mut inner = TraceBuilder::new(TraceConfig::default());
        let t = inner.track("compute");
        inner.span_at(t, Category::Stream, "k0", 0, 10);
        let inner = inner.finish();

        let mut outer = TraceBuilder::new(TraceConfig::default());
        outer.track("host"); // occupy id 0 so re-interning must remap
        outer.absorb(&inner);
        let trace = outer.finish();
        let ev = &trace.events()[0];
        assert_eq!(trace.track_name(ev.track), "compute");
    }
}
