//! Chrome trace-event JSON exporter.
//!
//! Emits the [Trace Event Format] understood by Perfetto and
//! `chrome://tracing`, written by hand (no serialization dependency) so
//! the output is byte-deterministic for the golden tests:
//!
//! * sim-time tracks live under **pid 1** (`process_name` = `"sim"`),
//!   one `tid` per track;
//! * host wall-clock tracks live under **pid 2** (`"host"`), keeping the
//!   two time bases on separate processes;
//! * spans are `ph:"X"` complete events, instants `ph:"i"` with thread
//!   scope, counters `ph:"C"`;
//! * timestamps are microseconds with exactly three fractional digits
//!   (`ns / 1000 . ns % 1000`) — nanosecond precision with no float
//!   rounding in the formatter.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::event::EventKind;
use crate::trace::Trace;
use std::fmt::Write as _;

const SIM_PID: u32 = 1;
const HOST_PID: u32 = 2;

/// Renders `trace` as a Chrome trace-event JSON array.
pub fn to_chrome_json(trace: &Trace) -> String {
    let mut out = String::with_capacity(128 + trace.len() * 96);
    out.push_str("[\n");
    let mut first = true;

    // Process metadata (only for processes that actually have tracks).
    let has_sim = trace.tracks().iter().any(|t| !t.host);
    let has_host = trace.tracks().iter().any(|t| t.host);
    if has_sim {
        push_meta_process(&mut out, &mut first, SIM_PID, "sim");
    }
    if has_host {
        push_meta_process(&mut out, &mut first, HOST_PID, "host");
    }
    for (tid, track) in trace.tracks().iter().enumerate() {
        let pid = if track.host { HOST_PID } else { SIM_PID };
        sep(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape(&track.name)
        );
    }

    for ev in trace.events() {
        let track = &trace.tracks()[ev.track.0 as usize];
        let pid = if track.host { HOST_PID } else { SIM_PID };
        let tid = ev.track.0;
        sep(&mut out, &mut first);
        match ev.kind {
            EventKind::Span { dur } => {
                let _ = write!(
                    out,
                    "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\"dur\":{},\
                     \"cat\":\"{}\",\"name\":\"{}\"",
                    micros(ev.ts),
                    micros(dur),
                    ev.cat.name(),
                    escape(&ev.name)
                );
                push_args(&mut out, ev.arg);
                out.push('}');
            }
            EventKind::Instant => {
                let _ = write!(
                    out,
                    "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\
                     \"cat\":\"{}\",\"name\":\"{}\"",
                    micros(ev.ts),
                    ev.cat.name(),
                    escape(&ev.name)
                );
                push_args(&mut out, ev.arg);
                out.push('}');
            }
            EventKind::Counter { value } => {
                let _ = write!(
                    out,
                    "{{\"ph\":\"C\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\
                     \"name\":\"{}\",\"args\":{{\"value\":{}}}}}",
                    micros(ev.ts),
                    escape(&ev.name),
                    number(value)
                );
            }
        }
    }

    out.push_str("\n]\n");
    out
}

fn push_meta_process(out: &mut String, first: &mut bool, pid: u32, name: &str) {
    sep(out, first);
    let _ = write!(
        out,
        "{{\"ph\":\"M\",\"pid\":{pid},\"name\":\"process_name\",\"args\":{{\"name\":\"{name}\"}}}}"
    );
}

fn push_args(out: &mut String, arg: Option<(&'static str, f64)>) {
    if let Some((key, value)) = arg {
        let _ = write!(out, ",\"args\":{{\"{}\":{}}}", escape(key), number(value));
    }
}

fn sep(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push_str(",\n");
    }
}

/// Nanoseconds rendered as microseconds with exactly three fractional
/// digits. Pure integer arithmetic — no float rounding, so identical
/// inputs always produce identical bytes.
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Deterministic JSON number formatting for counter values. Finite floats
/// use Rust's shortest round-trip `Display`; non-finite values (invalid
/// JSON) degrade to 0.
fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Minimal JSON string escaping (quotes, backslash, control characters).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Category, TraceBuilder, TraceConfig};

    #[test]
    fn micros_formatting_is_integer_exact() {
        assert_eq!(micros(0), "0.000");
        assert_eq!(micros(1), "0.001");
        assert_eq!(micros(999), "0.999");
        assert_eq!(micros(1_000), "1.000");
        assert_eq!(micros(1_234_567), "1234.567");
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn export_contains_metadata_and_all_phases() {
        let mut b = TraceBuilder::new(TraceConfig::default());
        let sim = b.track("stream0");
        let host = b.host_track("host.setup");
        b.span_at(sim, Category::Kernel, "k", 0, 1_500);
        b.span_at(host, Category::Host, "setup", 0, 10);
        b.instant_at(sim, Category::Mem, "spill", 5, Some(("bytes", 4096.0)));
        b.counter_at("faults", 7, 3.5);
        let json = b.finish().to_chrome_json();

        assert!(json.starts_with("[\n"));
        assert!(json.ends_with("]\n"));
        assert!(json.contains("\"process_name\",\"args\":{\"name\":\"sim\"}"));
        assert!(json.contains("\"process_name\",\"args\":{\"name\":\"host\"}"));
        assert!(json.contains("\"thread_name\",\"args\":{\"name\":\"stream0\"}"));
        assert!(json.contains("\"ph\":\"X\",\"pid\":1"));
        assert!(json.contains("\"dur\":1.500"));
        assert!(
            json.contains("\"ph\":\"X\",\"pid\":2"),
            "host span on pid 2"
        );
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"args\":{\"bytes\":4096}"));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"args\":{\"value\":3.5}"));
    }

    #[test]
    fn export_is_deterministic() {
        let build = || {
            let mut b = TraceBuilder::new(TraceConfig::default());
            let t = b.track("gpu");
            for i in 0..50u64 {
                b.span_at(t, Category::Tile, format!("block{i}"), i * 10, 9);
            }
            b.counter_at("occupancy", 0, 0.625);
            b.finish().to_chrome_json()
        };
        assert_eq!(build(), build());
    }
}
