//! Chrome trace-event JSON exporter: the chunked [`ChromeSink`] writer and
//! the buffered [`to_chrome_json`] wrapper around it.
//!
//! Emits the [Trace Event Format] understood by Perfetto and
//! `chrome://tracing`, written by hand (no serialization dependency) so
//! the output is byte-deterministic for the golden tests:
//!
//! * sim-time tracks live under **pid 1** (`process_name` = `"sim"`),
//!   one `tid` per track;
//! * host wall-clock tracks live under **pid 2** (`"host"`), keeping the
//!   two time bases on separate processes;
//! * process/thread metadata records are emitted lazily, immediately
//!   before the first event that references them — a requirement of
//!   chunked streaming (a track interned after the first chunk was
//!   written can't be announced retroactively), and applied identically
//!   in the buffered path so streamed and buffered bytes match;
//! * spans are `ph:"X"` complete events, instants `ph:"i"` with thread
//!   scope, counters `ph:"C"`; labels are merged into span/instant `args`
//!   objects (counters keep a pure numeric `value` series);
//! * a final `trace_stats` metadata record carries the total event count,
//!   the **drop count**, and the sim-time end cursor;
//! * timestamps are microseconds with exactly three fractional digits
//!   (`ns / 1000 . ns % 1000`) — nanosecond precision with no float
//!   rounding in the formatter.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::event::{EventKind, TraceEvent};
use crate::label::LabelSet;
use crate::sink::{escape, number, StreamSummary, TraceSink};
use crate::trace::{Trace, Track};
use std::fmt::Write as _;
use std::io::{self, Write};

const SIM_PID: u32 = 1;
const HOST_PID: u32 = 2;

/// Incremental Chrome trace-event JSON writer.
///
/// Safe to feed from multiple chunks: the `[` array header, the `,\n`
/// separators, and all metadata records are managed across calls, and the
/// closing `]` is written by [`TraceSink::finish`] together with the
/// `trace_stats` record. Output is a pure function of the event sequence —
/// never of where the chunk boundaries fell.
#[derive(Debug)]
pub struct ChromeSink<W: Write> {
    out: W,
    opened: bool,
    first: bool,
    sim_meta: bool,
    host_meta: bool,
    track_emitted: Vec<bool>,
}

impl<W: Write> ChromeSink<W> {
    /// Creates a writer over `out`.
    pub fn new(out: W) -> Self {
        ChromeSink {
            out,
            opened: false,
            first: true,
            sim_meta: false,
            host_meta: false,
            track_emitted: Vec::new(),
        }
    }

    fn open(&mut self, buf: &mut String) {
        if !self.opened {
            self.opened = true;
            buf.push_str("[\n");
        }
    }

    fn sep(&mut self, buf: &mut String) {
        if self.first {
            self.first = false;
        } else {
            buf.push_str(",\n");
        }
    }
}

impl<W: Write> TraceSink for ChromeSink<W> {
    fn chunk(
        &mut self,
        tracks: &[Track],
        symbols: &[String],
        events: &[TraceEvent],
    ) -> io::Result<()> {
        let mut buf = String::with_capacity(128 + events.len() * 96);
        self.open(&mut buf);
        if self.track_emitted.len() < tracks.len() {
            self.track_emitted.resize(tracks.len(), false);
        }
        for ev in events {
            let tid = ev.track.0 as usize;
            let track = &tracks[tid];
            let pid = if track.host { HOST_PID } else { SIM_PID };
            if track.host && !self.host_meta {
                self.host_meta = true;
                self.sep(&mut buf);
                push_meta_process(&mut buf, HOST_PID, "host");
            }
            if !track.host && !self.sim_meta {
                self.sim_meta = true;
                self.sep(&mut buf);
                push_meta_process(&mut buf, SIM_PID, "sim");
            }
            if !self.track_emitted[tid] {
                self.track_emitted[tid] = true;
                self.sep(&mut buf);
                let _ = write!(
                    buf,
                    "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\
                     \"args\":{{\"name\":\"{}\"}}}}",
                    escape(&track.name)
                );
            }
            self.sep(&mut buf);
            match ev.kind {
                EventKind::Span { dur } => {
                    let _ = write!(
                        buf,
                        "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\"dur\":{},\
                         \"cat\":\"{}\",\"name\":\"{}\"",
                        micros(ev.ts),
                        micros(dur),
                        ev.cat.name(),
                        escape(&ev.name)
                    );
                    push_args(&mut buf, ev.arg, ev.labels, symbols);
                    buf.push('}');
                }
                EventKind::Instant => {
                    let _ = write!(
                        buf,
                        "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\
                         \"cat\":\"{}\",\"name\":\"{}\"",
                        micros(ev.ts),
                        ev.cat.name(),
                        escape(&ev.name)
                    );
                    push_args(&mut buf, ev.arg, ev.labels, symbols);
                    buf.push('}');
                }
                EventKind::Counter { value } => {
                    let _ = write!(
                        buf,
                        "{{\"ph\":\"C\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\
                         \"name\":\"{}\",\"args\":{{\"value\":{}}}}}",
                        micros(ev.ts),
                        escape(&ev.name),
                        number(value)
                    );
                }
            }
        }
        self.out.write_all(buf.as_bytes())
    }

    fn finish(&mut self, summary: &StreamSummary) -> io::Result<()> {
        let mut buf = String::with_capacity(128);
        self.open(&mut buf);
        self.sep(&mut buf);
        let _ = write!(
            buf,
            "{{\"ph\":\"M\",\"pid\":{SIM_PID},\"name\":\"trace_stats\",\
             \"args\":{{\"events\":{},\"dropped\":{},\"end_cursor\":{}}}}}",
            summary.events, summary.dropped, summary.end_cursor
        );
        buf.push_str("\n]\n");
        self.out.write_all(buf.as_bytes())?;
        self.out.flush()
    }
}

/// Renders `trace` as a Chrome trace-event JSON array — a single-chunk
/// stream through [`ChromeSink`], so the result is byte-identical to
/// streaming the same recording.
pub fn to_chrome_json(trace: &Trace) -> String {
    let mut buf = Vec::with_capacity(128 + trace.len() * 96);
    let mut sink = ChromeSink::new(&mut buf);
    sink.chunk(trace.tracks(), trace.symbols(), trace.events())
        .expect("in-memory write cannot fail");
    sink.finish(&trace.stream_summary())
        .expect("in-memory write cannot fail");
    String::from_utf8(buf).expect("chrome output is UTF-8")
}

fn push_meta_process(out: &mut String, pid: u32, name: &str) {
    let _ = write!(
        out,
        "{{\"ph\":\"M\",\"pid\":{pid},\"name\":\"process_name\",\"args\":{{\"name\":\"{name}\"}}}}"
    );
}

fn push_args(
    out: &mut String,
    arg: Option<(&'static str, f64)>,
    labels: LabelSet,
    symbols: &[String],
) {
    if arg.is_none() && labels.is_empty() {
        return;
    }
    out.push_str(",\"args\":{");
    let mut first = true;
    if let Some((key, value)) = arg {
        let _ = write!(out, "\"{}\":{}", escape(key), number(value));
        first = false;
    }
    for (dim, sym) in labels.iter() {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "\"{}\":\"{}\"",
            dim.key(),
            escape(&symbols[sym as usize])
        );
    }
    out.push('}');
}

/// Nanoseconds rendered as microseconds with exactly three fractional
/// digits. Pure integer arithmetic — no float rounding, so identical
/// inputs always produce identical bytes.
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::SharedBuffer;
    use crate::{Category, Dim, TraceBuilder, TraceConfig};

    #[test]
    fn micros_formatting_is_integer_exact() {
        assert_eq!(micros(0), "0.000");
        assert_eq!(micros(1), "0.001");
        assert_eq!(micros(999), "0.999");
        assert_eq!(micros(1_000), "1.000");
        assert_eq!(micros(1_234_567), "1234.567");
    }

    #[test]
    fn export_contains_metadata_and_all_phases() {
        let mut b = TraceBuilder::new(TraceConfig::default());
        let sim = b.track("stream0");
        let host = b.host_track("host.setup");
        b.span_at(sim, Category::Kernel, "k", 0, 1_500);
        b.span_at(host, Category::Host, "setup", 0, 10);
        b.instant_at(sim, Category::Mem, "spill", 5, Some(("bytes", 4096.0)));
        b.counter_at("faults", 7, 3.5);
        let json = b.finish().to_chrome_json();

        assert!(json.starts_with("[\n"));
        assert!(json.ends_with("]\n"));
        assert!(json.contains("\"process_name\",\"args\":{\"name\":\"sim\"}"));
        assert!(json.contains("\"process_name\",\"args\":{\"name\":\"host\"}"));
        assert!(json.contains("\"thread_name\",\"args\":{\"name\":\"stream0\"}"));
        assert!(json.contains("\"ph\":\"X\",\"pid\":1"));
        assert!(json.contains("\"dur\":1.500"));
        assert!(
            json.contains("\"ph\":\"X\",\"pid\":2"),
            "host span on pid 2"
        );
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"args\":{\"bytes\":4096}"));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"args\":{\"value\":3.5}"));
        assert!(
            json.contains("\"trace_stats\",\"args\":{\"events\":4,\"dropped\":0,"),
            "stats metadata embedded: {json}"
        );
    }

    #[test]
    fn labels_merge_into_span_args() {
        let mut b = TraceBuilder::new(TraceConfig::default());
        let t = b.track("runtime");
        b.set_label(Dim::Mode, "uvm");
        b.span_with(t, Category::Memcpy, "h2d", 0, 10, Some(("bytes", 8.0)));
        let json = b.finish().to_chrome_json();
        assert!(
            json.contains("\"args\":{\"bytes\":8,\"mode\":\"uvm\"}"),
            "arg then labels in Dim order: {json}"
        );
    }

    #[test]
    fn export_is_deterministic() {
        let build = || {
            let mut b = TraceBuilder::new(TraceConfig::default());
            let t = b.track("gpu");
            for i in 0..50u64 {
                b.span_at(t, Category::Tile, format!("block{i}"), i * 10, 9);
            }
            b.counter_at("occupancy", 0, 0.625);
            b.finish().to_chrome_json()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn streamed_chunks_match_buffered_export() {
        let record = |b: &mut TraceBuilder| {
            let t = b.track("gpu");
            for i in 0..100u64 {
                b.span_at(t, Category::Tile, format!("block{i}"), i * 10, 9);
            }
            b.counter_at("occupancy", 0, 0.625);
        };
        // Buffered: unbounded ring, single-chunk export.
        let mut buffered = TraceBuilder::new(TraceConfig::default());
        record(&mut buffered);
        let buffered = buffered.finish().to_chrome_json();
        // Streamed: tiny ring forcing many chunk boundaries.
        let bytes = SharedBuffer::new();
        let mut streamed = TraceBuilder::new(TraceConfig::default().with_capacity(7))
            .with_sink(Box::new(ChromeSink::new(bytes.clone())));
        record(&mut streamed);
        let trace = streamed.finish();
        assert_eq!(trace.dropped(), 0);
        assert_eq!(trace.streamed(), 101);
        assert_eq!(
            bytes.into_string(),
            buffered,
            "chunking must not leak into bytes"
        );
    }

    #[test]
    fn empty_stream_is_stats_only() {
        let json = TraceBuilder::new(TraceConfig::default())
            .finish()
            .to_chrome_json();
        assert_eq!(
            json,
            "[\n{\"ph\":\"M\",\"pid\":1,\"name\":\"trace_stats\",\
             \"args\":{\"events\":0,\"dropped\":0,\"end_cursor\":0}}\n]\n"
        );
    }
}
