//! # hetsim-trace
//!
//! The observability substrate of the hetsim simulator: structured
//! events stamped in *simulated* nanoseconds, recorded into a bounded
//! ring buffer, and exported as Chrome trace-event JSON (loadable in
//! Perfetto or `chrome://tracing`) or CSV time series.
//!
//! The crate has no dependencies — not even on `hetsim-engine` — so that
//! every crate in the simulator DAG, the engine included, can emit events.
//! Timestamps are raw `u64` nanoseconds; callers convert from their own
//! time types (`SimTime::as_nanos()` upstream).
//!
//! ## Two ways to record
//!
//! * [`TraceBuilder`] — an owned buffer. Components that *always* produce
//!   a schedule record (the stream scheduler, the inter-job pipeline) build
//!   one directly; the resulting [`Trace`] is their single source of truth
//!   for derived views such as Gantt charts.
//! * [`session`] — a thread-local recorder, **off by default**. When no
//!   session is active every emit call is a single thread-local boolean
//!   read, so instrumented hot paths cost (near) nothing. A session is
//!   started around one run ([`session::start`]) and drained with
//!   [`session::finish`].
//!
//! ## Event model
//!
//! Three event kinds ([`EventKind`]) on named lanes ([tracks](TraceBuilder::track)):
//!
//! * **spans** — `[ts, ts + dur)` intervals (`alloc`, `fault_batch`,
//!   `kernel`, …);
//! * **instants** — zero-width markers (an eviction, a chip spill);
//! * **counters** — named numeric samples (`uvm.page_faults`), optionally
//!   rate-limited to a configurable sim-time interval
//!   ([`TraceConfig::counter_interval`]) and queried back as time series
//!   through the [`metrics::MetricsRegistry`].
//!
//! # Example
//!
//! ```
//! use hetsim_trace::{Category, TraceBuilder, TraceConfig};
//!
//! let mut b = TraceBuilder::new(TraceConfig::default());
//! let gpu = b.track("gpu");
//! let dma = b.track("dma");
//! b.span_at(dma, Category::Memcpy, "h2d", 0, 500);
//! b.span_at(gpu, Category::Kernel, "saxpy", 500, 1_200);
//! b.counter("uvm.page_faults", 0.0);
//! let trace = b.finish();
//! assert_eq!(trace.category_total(Category::Kernel), 1_200);
//! let json = trace.to_chrome_json();
//! assert!(json.contains("\"ph\":\"X\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod config;
pub mod csv;
pub mod event;
pub mod label;
pub mod metrics;
pub mod recorder;
pub mod selfprof;
pub mod session;
pub mod sink;
pub mod trace;

pub use chrome::ChromeSink;
pub use config::TraceConfig;
pub use event::{Category, EventKind, TraceEvent, TrackId};
pub use label::{Dim, LabelSet};
pub use metrics::MetricsRegistry;
pub use recorder::TraceBuilder;
pub use selfprof::HostProfiler;
pub use sink::{JsonlSink, SharedBuffer, StreamSummary, TraceSink};
pub use trace::{Trace, Track};
