//! [`MetricsRegistry`] — named counter time series derived from a trace,
//! with labeled dimensions.
//!
//! Counters are recorded as raw samples ([`Category::Counter`] events);
//! the registry groups them by name and answers the questions reports
//! need: the latest value, the peak, and a resampled series on a regular
//! sim-time grid for plotting. Each sample also keeps the label set it
//! was stamped with at record time, so fleet-scale slices — per mode, per
//! stream, per job — are one [`series_where`](MetricsRegistry::series_where)
//! or [`group_by`](MetricsRegistry::group_by) call away.
//!
//! [`Category::Counter`]: crate::Category::Counter

use crate::event::EventKind;
use crate::label::Dim;
use crate::sink::{escape, number};
use crate::trace::Trace;
use std::collections::BTreeMap;

/// A resolved, sorted label key: `(dim, value)` pairs in [`Dim::ALL`]
/// order. Empty for unlabeled samples.
pub type LabelKey = Vec<(Dim, String)>;

/// Named counter series snapshotted from a [`Trace`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    series: BTreeMap<String, Vec<(u64, f64)>>,
    labeled: BTreeMap<(String, LabelKey), Vec<(u64, f64)>>,
}

impl MetricsRegistry {
    /// Collects every counter sample in `trace` into per-name series,
    /// sorted by timestamp (stable for equal timestamps), and into
    /// per-`(name, labels)` series for dimensional queries.
    pub fn from_trace(trace: &Trace) -> Self {
        let mut series: BTreeMap<String, Vec<(u64, f64)>> = BTreeMap::new();
        let mut labeled: BTreeMap<(String, LabelKey), Vec<(u64, f64)>> = BTreeMap::new();
        for ev in trace.events() {
            if let EventKind::Counter { value } = ev.kind {
                series
                    .entry(ev.name.to_string())
                    .or_default()
                    .push((ev.ts, value));
                let key: LabelKey = trace.labels(ev).map(|(d, v)| (d, v.to_string())).collect();
                labeled
                    .entry((ev.name.to_string(), key))
                    .or_default()
                    .push((ev.ts, value));
            }
        }
        for samples in series.values_mut() {
            samples.sort_by_key(|&(ts, _)| ts);
        }
        for samples in labeled.values_mut() {
            samples.sort_by_key(|&(ts, _)| ts);
        }
        MetricsRegistry { series, labeled }
    }

    /// Counter names, in sorted order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.series.keys().map(String::as_str)
    }

    /// The raw samples of one counter (all label slices merged).
    pub fn series(&self, name: &str) -> &[(u64, f64)] {
        self.series.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The distinct label keys under which `name` was sampled, in sorted
    /// order. An empty key means unlabeled samples exist.
    pub fn label_keys(&self, name: &str) -> Vec<&LabelKey> {
        self.labeled
            .keys()
            .filter(|(n, _)| n == name)
            .map(|(_, key)| key)
            .collect()
    }

    /// The distinct values one dimension takes across all samples of
    /// `name`, sorted.
    pub fn label_values(&self, name: &str, dim: Dim) -> Vec<&str> {
        let mut values: Vec<&str> = self
            .labeled
            .keys()
            .filter(|(n, _)| n == name)
            .flat_map(|(_, key)| key.iter())
            .filter(|(d, _)| *d == dim)
            .map(|(_, v)| v.as_str())
            .collect();
        values.sort_unstable();
        values.dedup();
        values
    }

    /// The samples of `name` whose labels match *every* `(dim, value)`
    /// filter, merged across the matching slices and sorted by timestamp.
    /// An empty filter list returns the same data as
    /// [`series`](MetricsRegistry::series).
    pub fn series_where(&self, name: &str, filters: &[(Dim, &str)]) -> Vec<(u64, f64)> {
        let mut out: Vec<(u64, f64)> = Vec::new();
        for ((n, key), samples) in &self.labeled {
            if n != name {
                continue;
            }
            let matches = filters
                .iter()
                .all(|(fd, fv)| key.iter().any(|(d, v)| d == fd && v == fv));
            if matches {
                out.extend_from_slice(samples);
            }
        }
        out.sort_by_key(|&(ts, _)| ts);
        out
    }

    /// Groups the samples of `name` by the value of one dimension:
    /// `dim value → merged sorted series`. Samples that don't carry `dim`
    /// are grouped under `"(unset)"`.
    pub fn group_by(&self, name: &str, dim: Dim) -> BTreeMap<String, Vec<(u64, f64)>> {
        let mut out: BTreeMap<String, Vec<(u64, f64)>> = BTreeMap::new();
        for ((n, key), samples) in &self.labeled {
            if n != name {
                continue;
            }
            let value = key
                .iter()
                .find(|(d, _)| *d == dim)
                .map(|(_, v)| v.clone())
                .unwrap_or_else(|| "(unset)".to_string());
            out.entry(value).or_default().extend_from_slice(samples);
        }
        for samples in out.values_mut() {
            samples.sort_by_key(|&(ts, _)| ts);
        }
        out
    }

    /// The last recorded value of one counter.
    pub fn last(&self, name: &str) -> Option<f64> {
        self.series(name).last().map(|&(_, v)| v)
    }

    /// The maximum recorded value of one counter.
    pub fn peak(&self, name: &str) -> Option<f64> {
        self.series(name)
            .iter()
            .map(|&(_, v)| v)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// Resamples one counter onto a regular grid of `interval` nanoseconds
    /// from 0 to `horizon` inclusive, holding the last-seen value
    /// (zero-order hold; 0.0 before the first sample).
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn sampled(&self, name: &str, interval: u64, horizon: u64) -> Vec<(u64, f64)> {
        assert!(interval > 0, "sampling interval must be non-zero");
        let samples = self.series(name);
        let mut out = Vec::new();
        let mut idx = 0usize;
        let mut held = 0.0f64;
        let mut ts = 0u64;
        loop {
            while idx < samples.len() && samples[idx].0 <= ts {
                held = samples[idx].1;
                idx += 1;
            }
            out.push((ts, held));
            if ts >= horizon {
                break;
            }
            ts += interval;
        }
        out
    }

    /// Renders every series as CSV (`name,ts_ns,value` rows, sorted by
    /// name then time) for offline plotting. Labels are collapsed — use
    /// [`to_labeled_csv`](MetricsRegistry::to_labeled_csv) for the
    /// dimensional view.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("name,ts_ns,value\n");
        for (name, samples) in &self.series {
            for &(ts, v) in samples {
                out.push_str(&format!("{name},{ts},{v}\n"));
            }
        }
        out
    }

    /// Renders every labeled slice as CSV with one column per dimension:
    /// `name,device,stream,sm,job,mode,ts_ns,value`, sorted by name, then
    /// label key, then time. Unset dimensions are empty fields.
    pub fn to_labeled_csv(&self) -> String {
        let mut out = String::from("name,device,stream,sm,job,mode,ts_ns,value\n");
        for ((name, key), samples) in &self.labeled {
            let mut cols: [&str; 5] = [""; 5];
            for (d, v) in key {
                cols[*d as usize] = v.as_str();
            }
            for &(ts, v) in samples {
                out.push_str(&format!(
                    "{name},{},{},{},{},{},{ts},{v}\n",
                    cols[0], cols[1], cols[2], cols[3], cols[4]
                ));
            }
        }
        out
    }

    /// Renders every labeled sample as JSONL:
    /// `{"name":…,"labels":{…},"ts":N,"value":V}`, one object per line,
    /// in the same order as [`to_labeled_csv`](MetricsRegistry::to_labeled_csv).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ((name, key), samples) in &self.labeled {
            for &(ts, v) in samples {
                out.push_str("{\"name\":\"");
                out.push_str(&escape(name));
                out.push_str("\",\"labels\":{");
                let mut first = true;
                for (d, value) in key {
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    out.push('"');
                    out.push_str(d.key());
                    out.push_str("\":\"");
                    out.push_str(&escape(value));
                    out.push('"');
                }
                out.push_str("},\"ts\":");
                out.push_str(&ts.to_string());
                out.push_str(",\"value\":");
                out.push_str(&number(v));
                out.push_str("}\n");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TraceBuilder, TraceConfig};

    fn registry() -> MetricsRegistry {
        let mut b = TraceBuilder::new(TraceConfig::default());
        b.counter_at("faults", 0, 1.0);
        b.counter_at("faults", 100, 4.0);
        b.counter_at("faults", 250, 2.0);
        b.counter_at("residency", 50, 0.5);
        MetricsRegistry::from_trace(&b.finish())
    }

    fn labeled_registry() -> MetricsRegistry {
        let mut b = TraceBuilder::new(TraceConfig::default());
        b.set_label(Dim::Mode, "uvm");
        b.set_label(Dim::Stream, "h2d");
        b.counter_at("bytes", 0, 10.0);
        b.set_label(Dim::Stream, "d2h");
        b.counter_at("bytes", 100, 20.0);
        b.set_label(Dim::Mode, "async");
        b.set_label(Dim::Stream, "h2d");
        b.counter_at("bytes", 50, 30.0);
        b.clear_label(Dim::Mode);
        b.clear_label(Dim::Stream);
        b.counter_at("bytes", 200, 40.0);
        MetricsRegistry::from_trace(&b.finish())
    }

    #[test]
    fn series_grouped_and_sorted() {
        let r = registry();
        assert_eq!(r.names().collect::<Vec<_>>(), vec!["faults", "residency"]);
        assert_eq!(r.series("faults").len(), 3);
        assert_eq!(r.last("faults"), Some(2.0));
        assert_eq!(r.peak("faults"), Some(4.0));
        assert_eq!(r.last("missing"), None);
    }

    #[test]
    fn zero_order_hold_resampling() {
        let r = registry();
        let grid = r.sampled("faults", 100, 300);
        assert_eq!(
            grid,
            vec![(0, 1.0), (100, 4.0), (200, 4.0), (300, 2.0)],
            "holds last value between samples"
        );
        // Before the first sample the held value is 0.
        let g2 = r.sampled("residency", 25, 50);
        assert_eq!(g2, vec![(0, 0.0), (25, 0.0), (50, 0.5)]);
    }

    #[test]
    fn csv_lists_all_samples() {
        let csv = registry().to_csv();
        assert!(csv.starts_with("name,ts_ns,value\n"));
        assert!(csv.contains("faults,100,4\n"));
        assert!(csv.contains("residency,50,0.5\n"));
    }

    #[test]
    fn series_where_filters_by_labels() {
        let r = labeled_registry();
        assert_eq!(
            r.series_where("bytes", &[(Dim::Mode, "uvm")]),
            vec![(0, 10.0), (100, 20.0)]
        );
        assert_eq!(
            r.series_where("bytes", &[(Dim::Mode, "uvm"), (Dim::Stream, "h2d")]),
            vec![(0, 10.0)]
        );
        assert_eq!(
            r.series_where("bytes", &[(Dim::Stream, "h2d")]),
            vec![(0, 10.0), (50, 30.0)],
            "filters cut across modes"
        );
        assert_eq!(r.series_where("bytes", &[]).len(), 4, "no filter = all");
        assert!(r.series_where("bytes", &[(Dim::Job, "7")]).is_empty());
    }

    #[test]
    fn group_by_slices_one_dimension() {
        let r = labeled_registry();
        let by_mode = r.group_by("bytes", Dim::Mode);
        assert_eq!(
            by_mode.keys().collect::<Vec<_>>(),
            vec!["(unset)", "async", "uvm"]
        );
        assert_eq!(by_mode["uvm"], vec![(0, 10.0), (100, 20.0)]);
        assert_eq!(by_mode["async"], vec![(50, 30.0)]);
        assert_eq!(by_mode["(unset)"], vec![(200, 40.0)]);
    }

    #[test]
    fn label_discovery() {
        let r = labeled_registry();
        assert_eq!(r.label_values("bytes", Dim::Mode), vec!["async", "uvm"]);
        assert_eq!(r.label_values("bytes", Dim::Stream), vec!["d2h", "h2d"]);
        assert_eq!(r.label_keys("bytes").len(), 4);
    }

    #[test]
    fn labeled_exports() {
        let r = labeled_registry();
        let csv = r.to_labeled_csv();
        assert!(csv.starts_with("name,device,stream,sm,job,mode,ts_ns,value\n"));
        assert!(csv.contains("bytes,,h2d,,,uvm,0,10\n"), "{csv}");
        assert!(csv.contains("bytes,,,,,,200,40\n"), "unlabeled row: {csv}");
        let jsonl = r.to_jsonl();
        assert!(
            jsonl.contains(
                "{\"name\":\"bytes\",\"labels\":{\"stream\":\"h2d\",\"mode\":\"uvm\"},\
                 \"ts\":0,\"value\":10}"
            ),
            "{jsonl}"
        );
        assert!(jsonl.contains("\"labels\":{},\"ts\":200,\"value\":40}"));
    }
}
