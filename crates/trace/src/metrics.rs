//! [`MetricsRegistry`] — named counter time series derived from a trace.
//!
//! Counters are recorded as raw samples ([`Category::Counter`] events);
//! the registry groups them by name and answers the questions reports
//! need: the latest value, the peak, and a resampled series on a regular
//! sim-time grid for plotting.
//!
//! [`Category::Counter`]: crate::Category::Counter

use crate::event::EventKind;
use crate::trace::Trace;
use std::collections::BTreeMap;

/// Named counter series snapshotted from a [`Trace`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    series: BTreeMap<String, Vec<(u64, f64)>>,
}

impl MetricsRegistry {
    /// Collects every counter sample in `trace` into per-name series,
    /// sorted by timestamp (stable for equal timestamps).
    pub fn from_trace(trace: &Trace) -> Self {
        let mut series: BTreeMap<String, Vec<(u64, f64)>> = BTreeMap::new();
        for ev in trace.events() {
            if let EventKind::Counter { value } = ev.kind {
                series
                    .entry(ev.name.to_string())
                    .or_default()
                    .push((ev.ts, value));
            }
        }
        for samples in series.values_mut() {
            samples.sort_by_key(|&(ts, _)| ts);
        }
        MetricsRegistry { series }
    }

    /// Counter names, in sorted order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.series.keys().map(String::as_str)
    }

    /// The raw samples of one counter.
    pub fn series(&self, name: &str) -> &[(u64, f64)] {
        self.series.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The last recorded value of one counter.
    pub fn last(&self, name: &str) -> Option<f64> {
        self.series(name).last().map(|&(_, v)| v)
    }

    /// The maximum recorded value of one counter.
    pub fn peak(&self, name: &str) -> Option<f64> {
        self.series(name)
            .iter()
            .map(|&(_, v)| v)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// Resamples one counter onto a regular grid of `interval` nanoseconds
    /// from 0 to `horizon` inclusive, holding the last-seen value
    /// (zero-order hold; 0.0 before the first sample).
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn sampled(&self, name: &str, interval: u64, horizon: u64) -> Vec<(u64, f64)> {
        assert!(interval > 0, "sampling interval must be non-zero");
        let samples = self.series(name);
        let mut out = Vec::new();
        let mut idx = 0usize;
        let mut held = 0.0f64;
        let mut ts = 0u64;
        loop {
            while idx < samples.len() && samples[idx].0 <= ts {
                held = samples[idx].1;
                idx += 1;
            }
            out.push((ts, held));
            if ts >= horizon {
                break;
            }
            ts += interval;
        }
        out
    }

    /// Renders every series as CSV (`name,ts_ns,value` rows, sorted by
    /// name then time) for offline plotting.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("name,ts_ns,value\n");
        for (name, samples) in &self.series {
            for &(ts, v) in samples {
                out.push_str(&format!("{name},{ts},{v}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TraceBuilder, TraceConfig};

    fn registry() -> MetricsRegistry {
        let mut b = TraceBuilder::new(TraceConfig::default());
        b.counter_at("faults", 0, 1.0);
        b.counter_at("faults", 100, 4.0);
        b.counter_at("faults", 250, 2.0);
        b.counter_at("residency", 50, 0.5);
        MetricsRegistry::from_trace(&b.finish())
    }

    #[test]
    fn series_grouped_and_sorted() {
        let r = registry();
        assert_eq!(r.names().collect::<Vec<_>>(), vec!["faults", "residency"]);
        assert_eq!(r.series("faults").len(), 3);
        assert_eq!(r.last("faults"), Some(2.0));
        assert_eq!(r.peak("faults"), Some(4.0));
        assert_eq!(r.last("missing"), None);
    }

    #[test]
    fn zero_order_hold_resampling() {
        let r = registry();
        let grid = r.sampled("faults", 100, 300);
        assert_eq!(
            grid,
            vec![(0, 1.0), (100, 4.0), (200, 4.0), (300, 2.0)],
            "holds last value between samples"
        );
        // Before the first sample the held value is 0.
        let g2 = r.sampled("residency", 25, 50);
        assert_eq!(g2, vec![(0, 0.0), (25, 0.0), (50, 0.5)]);
    }

    #[test]
    fn csv_lists_all_samples() {
        let csv = registry().to_csv();
        assert!(csv.starts_with("name,ts_ns,value\n"));
        assert!(csv.contains("faults,100,4\n"));
        assert!(csv.contains("residency,50,0.5\n"));
    }
}
