//! Trace-session configuration.

/// Configuration of one trace recording.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceConfig {
    /// Maximum number of events kept. When the ring buffer is full the
    /// oldest events are overwritten (and counted as dropped), bounding
    /// the memory cost of tracing a long run.
    pub capacity: usize,
    /// Minimum sim-time spacing (nanoseconds) between two samples of the
    /// same counter. `None` keeps every sample. High-frequency emitters
    /// (per-block GPU counters) are decimated to this grid at record time.
    pub counter_interval: Option<u64>,
    /// Whether host wall-clock self-profiling spans
    /// ([`crate::HostProfiler`]) are recorded. Off by default so that
    /// sim-only traces are byte-reproducible across machines.
    pub self_profile: bool,
}

impl TraceConfig {
    /// Default capacity: one million events (~56 MB worst case).
    pub const DEFAULT_CAPACITY: usize = 1 << 20;

    /// A configuration that records everything reproducibly (no host
    /// wall-clock spans) — what the determinism tests use.
    pub fn sim_only() -> Self {
        TraceConfig::default()
    }

    /// Enables host wall-clock self-profiling spans.
    pub fn with_self_profile(mut self) -> Self {
        self.self_profile = true;
        self
    }

    /// Overrides the ring-buffer capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "trace buffer needs non-zero capacity");
        self.capacity = capacity;
        self
    }

    /// Sets the counter sampling interval in sim nanoseconds.
    pub fn with_counter_interval(mut self, nanos: u64) -> Self {
        self.counter_interval = Some(nanos);
        self
    }
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            capacity: TraceConfig::DEFAULT_CAPACITY,
            counter_interval: None,
            self_profile: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_style_overrides() {
        let c = TraceConfig::default()
            .with_capacity(16)
            .with_counter_interval(1_000)
            .with_self_profile();
        assert_eq!(c.capacity, 16);
        assert_eq!(c.counter_interval, Some(1_000));
        assert!(c.self_profile);
    }

    #[test]
    #[should_panic(expected = "non-zero capacity")]
    fn zero_capacity_rejected() {
        let _ = TraceConfig::default().with_capacity(0);
    }
}
