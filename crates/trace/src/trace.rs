//! [`Trace`] — an immutable, finished recording.

use crate::event::{Category, EventKind, TraceEvent, TrackId};
use crate::label::Dim;
use crate::sink::{JsonlSink, StreamSummary, TraceSink};

/// A named lane within a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Track {
    /// Display name (`"stream0"`, `"uvm"`, `"host.setup"` …).
    pub name: String,
    /// Whether timestamps on this track are host wall-clock nanoseconds
    /// rather than simulated time. Host tracks are exported under a
    /// separate Chrome process so the two time bases never share an axis.
    pub host: bool,
}

/// An immutable finished recording: the output of
/// [`TraceBuilder::finish`](crate::TraceBuilder::finish) and the input of
/// every exporter and derived view (Gantt timelines, metrics registry).
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    tracks: Vec<Track>,
    symbols: Vec<String>,
    events: Vec<TraceEvent>,
    dropped: u64,
    streamed: u64,
    end_cursor: u64,
    stream_error: Option<String>,
}

impl Trace {
    pub(crate) fn new(
        tracks: Vec<Track>,
        symbols: Vec<String>,
        events: Vec<TraceEvent>,
        dropped: u64,
        streamed: u64,
        end_cursor: u64,
        stream_error: Option<String>,
    ) -> Self {
        Trace {
            tracks,
            symbols,
            events,
            dropped,
            streamed,
            end_cursor,
            stream_error,
        }
    }

    /// An empty trace.
    pub fn empty() -> Self {
        Trace::new(Vec::new(), Vec::new(), Vec::new(), 0, 0, 0, None)
    }

    /// The recorder's global sim-time cursor at
    /// [`TraceBuilder::finish`](crate::TraceBuilder::finish) — the sum of
    /// all phase-span durations. Independent recordings are concatenated
    /// back-to-back by absorbing each at the running sum of the previous
    /// recordings' end cursors, which is how parallel per-worker sessions
    /// merge into one deterministic timeline.
    pub fn end_cursor(&self) -> u64 {
        self.end_cursor
    }

    /// All recorded events, in append order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// All tracks, indexed by [`TrackId`].
    pub fn tracks(&self) -> &[Track] {
        &self.tracks
    }

    /// The interned label values; each event's
    /// [`labels`](TraceEvent::labels) holds indices into this table.
    pub fn symbols(&self) -> &[String] {
        &self.symbols
    }

    /// Resolves one label dimension of an event to its string value.
    pub fn label<'a>(&'a self, ev: &TraceEvent, dim: Dim) -> Option<&'a str> {
        ev.labels
            .get(dim)
            .map(|sym| self.symbols[sym as usize].as_str())
    }

    /// `(dim, value)` pairs for every labeled dimension of an event, in
    /// [`Dim::ALL`] order.
    pub fn labels<'a>(&'a self, ev: &TraceEvent) -> impl Iterator<Item = (Dim, &'a str)> + 'a {
        let labels = ev.labels;
        Dim::ALL.into_iter().filter_map(move |d| {
            labels
                .get(d)
                .map(|sym| (d, self.symbols[sym as usize].as_str()))
        })
    }

    /// The display name of a track.
    pub fn track_name(&self, id: TrackId) -> &str {
        &self.tracks[id.0 as usize].name
    }

    /// The [`TrackId`] of a track by name, if it exists.
    pub fn find_track(&self, name: &str) -> Option<TrackId> {
        self.tracks
            .iter()
            .position(|t| t.name == name)
            .map(|i| TrackId(i as u16))
    }

    /// Events dropped because the ring buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events drained to an attached [`TraceSink`] before finish. A fully
    /// streamed recording holds no events itself; its data lives in the
    /// sink's output.
    pub fn streamed(&self) -> u64 {
        self.streamed
    }

    /// Total events recorded: streamed to a sink plus retained here.
    pub fn total_events(&self) -> u64 {
        self.streamed + self.events.len() as u64
    }

    /// The first sink write error, if streaming failed mid-run (the
    /// recorder then fell back to plain ring buffering).
    pub fn stream_error(&self) -> Option<&str> {
        self.stream_error.as_deref()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterator over span events only.
    pub fn spans(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(|e| e.is_span())
    }

    /// Sum of span durations in one category, on sim tracks only.
    ///
    /// This is the quantity the phase-additivity tests compare against
    /// `RunReport` components: the runtime emits exactly one phase span
    /// per accounted interval, so
    /// `category_total(Alloc) + category_total(Memcpy) + category_total(Kernel)`
    /// reproduces the report's total.
    pub fn category_total(&self, cat: Category) -> u64 {
        self.spans()
            .filter(|e| e.cat == cat && !self.tracks[e.track.0 as usize].host)
            .map(|e| e.dur())
            .sum()
    }

    /// Number of span events in one category.
    pub fn category_count(&self, cat: Category) -> usize {
        self.spans().filter(|e| e.cat == cat).count()
    }

    /// All samples of one counter as `(ts, value)` pairs, in record order.
    pub fn counter_series(&self, name: &str) -> Vec<(u64, f64)> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::Counter { value } if e.name == name => Some((e.ts, value)),
                _ => None,
            })
            .collect()
    }

    /// Names of all counters present, sorted and deduplicated.
    pub fn counter_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Counter { .. }))
            .map(|e| e.name.as_ref())
            .collect();
        names.sort_unstable();
        names.dedup();
        names
    }

    /// The latest end timestamp across sim-track events (the sim-time
    /// horizon of the recording).
    pub fn horizon(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| !self.tracks[e.track.0 as usize].host)
            .map(|e| e.end())
            .max()
            .unwrap_or(0)
    }

    /// Spans on one track, sorted by start time (stable for ties).
    pub fn track_spans(&self, id: TrackId) -> Vec<&TraceEvent> {
        let mut spans: Vec<&TraceEvent> = self.spans().filter(|e| e.track == id).collect();
        spans.sort_by_key(|e| e.ts);
        spans
    }

    /// The end-of-stream totals a sink would receive for this trace: used
    /// by the buffered exporters so a buffered export and a streamed one
    /// of the same recording agree on their summary records.
    pub(crate) fn stream_summary(&self) -> StreamSummary {
        StreamSummary {
            events: self.total_events(),
            dropped: self.dropped,
            end_cursor: self.end_cursor,
        }
    }

    /// Exports the trace as Chrome trace-event JSON — see [`crate::chrome`].
    pub fn to_chrome_json(&self) -> String {
        crate::chrome::to_chrome_json(self)
    }

    /// Exports the trace as JSONL, one self-describing object per line —
    /// byte-identical to streaming the same recording through a
    /// [`JsonlSink`], by construction: this *is* a single-chunk stream.
    pub fn to_jsonl(&self) -> String {
        let mut buf = Vec::with_capacity(64 + self.len() * 96);
        let mut sink = JsonlSink::new(&mut buf);
        sink.chunk(&self.tracks, &self.symbols, &self.events)
            .expect("in-memory write cannot fail");
        sink.finish(&self.stream_summary())
            .expect("in-memory write cannot fail");
        String::from_utf8(buf).expect("JSONL output is UTF-8")
    }

    /// Exports span events as CSV — see [`crate::csv`].
    pub fn to_csv(&self) -> String {
        crate::csv::to_csv(self)
    }

    /// Renders a compact plain-text listing, one event per line, for
    /// terminal inspection (`--trace -` style output and debugging).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            let track = self.track_name(e.track);
            match e.kind {
                EventKind::Span { dur } => {
                    out.push_str(&format!(
                        "{:>12} +{:<10} {:<12} {:<10} {}",
                        e.ts,
                        dur,
                        track,
                        e.cat.name(),
                        e.name
                    ));
                }
                EventKind::Instant => {
                    out.push_str(&format!(
                        "{:>12} {:<11} {:<12} {:<10} {}",
                        e.ts,
                        "!",
                        track,
                        e.cat.name(),
                        e.name
                    ));
                }
                EventKind::Counter { value } => {
                    out.push_str(&format!(
                        "{:>12} {:<11} {:<12} {:<10} {} = {}",
                        e.ts,
                        "#",
                        track,
                        e.cat.name(),
                        e.name,
                        value
                    ));
                }
            }
            if let Some((k, v)) = e.arg {
                out.push_str(&format!("  ({k}={v})"));
            }
            out.push('\n');
        }
        if self.dropped > 0 {
            out.push_str(&format!(
                "# {} events dropped (buffer full)\n",
                self.dropped
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TraceBuilder, TraceConfig};

    fn sample() -> Trace {
        let mut b = TraceBuilder::new(TraceConfig::default());
        let host = b.track("host");
        let gpu = b.track("gpu");
        b.span_at(host, Category::Memcpy, "h2d", 0, 400);
        b.span_at(gpu, Category::Kernel, "k0", 400, 100);
        b.span_at(gpu, Category::Kernel, "k1", 500, 150);
        b.instant_at(host, Category::Mem, "spill", 20, None);
        b.counter_at("faults", 0, 1.0);
        b.counter_at("faults", 100, 4.0);
        b.finish()
    }

    #[test]
    fn category_totals_sum_spans() {
        let t = sample();
        assert_eq!(t.category_total(Category::Kernel), 250);
        assert_eq!(t.category_total(Category::Memcpy), 400);
        assert_eq!(t.category_total(Category::Alloc), 0);
        assert_eq!(t.category_count(Category::Kernel), 2);
    }

    #[test]
    fn host_tracks_excluded_from_totals_and_horizon() {
        let mut b = TraceBuilder::new(TraceConfig::default());
        let sim = b.track("sim");
        let wall = b.host_track("host.setup");
        b.span_at(sim, Category::Kernel, "k", 0, 100);
        b.span_at(wall, Category::Host, "setup", 0, 99_999);
        let t = b.finish();
        assert_eq!(t.category_total(Category::Kernel), 100);
        assert_eq!(
            t.category_total(Category::Host),
            0,
            "host spans don't count"
        );
        assert_eq!(t.horizon(), 100);
    }

    #[test]
    fn counter_series_and_names() {
        let t = sample();
        assert_eq!(t.counter_series("faults"), vec![(0, 1.0), (100, 4.0)]);
        assert_eq!(t.counter_names(), vec!["faults"]);
    }

    #[test]
    fn track_lookup_and_sorted_spans() {
        let t = sample();
        let gpu = t.find_track("gpu").unwrap();
        let spans = t.track_spans(gpu);
        assert_eq!(spans.len(), 2);
        assert!(spans[0].ts <= spans[1].ts);
        assert!(t.find_track("nope").is_none());
    }

    #[test]
    fn text_rendering_mentions_all_kinds() {
        let text = sample().to_text();
        assert!(text.contains("h2d"));
        assert!(text.contains("spill"));
        assert!(text.contains("faults = 4"));
    }

    #[test]
    fn total_events_counts_streamed_and_retained() {
        let t = sample();
        assert_eq!(t.streamed(), 0);
        assert_eq!(t.total_events(), t.len() as u64);
        assert!(t.stream_error().is_none());
    }
}
