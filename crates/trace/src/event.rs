//! The structured event model: categories, kinds, and the event record.

use crate::label::LabelSet;
use std::borrow::Cow;
use std::fmt;

/// Identifier of a track (a named lane) within one trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TrackId(pub u16);

/// The semantic category of an event — the `cat` field of the Chrome
/// trace-event format, and the unit of span-duration accounting in tests
/// (phase additivity sums one category at a time).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Category {
    /// `cudaMalloc`/`cudaMallocManaged`/`cudaFree` work.
    Alloc,
    /// Data transfer accounted to the run's memcpy component.
    Memcpy,
    /// GPU kernel execution (including fault-stall inflation).
    Kernel,
    /// A batch of UVM far faults being serviced.
    FaultBatch,
    /// UVM range prefetch.
    Prefetch,
    /// UVM demand migration traffic.
    Migration,
    /// An individual DMA operation on the CPU↔GPU link.
    Dma,
    /// Sampled block/tile execution inside a kernel.
    Tile,
    /// A stream-schedule operation.
    Stream,
    /// Discrete-event engine internals (queue dispatch).
    Engine,
    /// Memory-system events (host DRAM chip spill, eviction).
    Mem,
    /// A named counter sample.
    Counter,
    /// Simulator self-profiling in host wall-clock time.
    Host,
    /// An injected fault or recovery action from the chaos layer.
    Chaos,
}

impl Category {
    /// The stable lowercase identifier used in exports.
    pub fn name(self) -> &'static str {
        match self {
            Category::Alloc => "alloc",
            Category::Memcpy => "memcpy",
            Category::Kernel => "kernel",
            Category::FaultBatch => "fault_batch",
            Category::Prefetch => "prefetch",
            Category::Migration => "migration",
            Category::Dma => "dma",
            Category::Tile => "tile",
            Category::Stream => "stream",
            Category::Engine => "engine",
            Category::Mem => "mem",
            Category::Counter => "counter",
            Category::Host => "host",
            Category::Chaos => "chaos",
        }
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What kind of record an event is.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// An interval `[ts, ts + dur)`.
    Span {
        /// Duration in nanoseconds.
        dur: u64,
    },
    /// A zero-width marker at `ts`.
    Instant,
    /// A numeric sample at `ts`.
    Counter {
        /// Sampled value.
        value: f64,
    },
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// The lane the event belongs to.
    pub track: TrackId,
    /// Semantic category.
    pub cat: Category,
    /// Event name (span label / counter name).
    pub name: Cow<'static, str>,
    /// Timestamp, nanoseconds. Simulated time on sim tracks, wall-clock
    /// nanoseconds since profiler start on host tracks.
    pub ts: u64,
    /// Span / instant / counter.
    pub kind: EventKind,
    /// One optional named numeric argument (bytes moved, pages faulted,
    /// stream id …), carried into the Chrome `args` object.
    pub arg: Option<(&'static str, f64)>,
    /// Interned label dimensions stamped from the recorder's ambient
    /// context at record time (symbol indices into the owning recording's
    /// table — resolve through [`Trace::label`]).
    ///
    /// [`Trace::label`]: crate::Trace::label
    pub labels: LabelSet,
}

impl TraceEvent {
    /// The span duration, zero for instants and counters.
    pub fn dur(&self) -> u64 {
        match self.kind {
            EventKind::Span { dur } => dur,
            _ => 0,
        }
    }

    /// The end timestamp (`ts + dur`).
    pub fn end(&self) -> u64 {
        self.ts + self.dur()
    }

    /// Whether this is a span.
    pub fn is_span(&self) -> bool {
        matches!(self.kind, EventKind::Span { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_names_are_stable() {
        assert_eq!(Category::FaultBatch.name(), "fault_batch");
        assert_eq!(Category::Alloc.to_string(), "alloc");
        assert_eq!(Category::Kernel.name(), "kernel");
        assert_eq!(Category::Chaos.name(), "chaos");
    }

    #[test]
    fn event_duration_accessors() {
        let e = TraceEvent {
            track: TrackId(0),
            cat: Category::Kernel,
            name: Cow::Borrowed("k"),
            ts: 10,
            kind: EventKind::Span { dur: 5 },
            arg: None,
            labels: LabelSet::EMPTY,
        };
        assert_eq!(e.dur(), 5);
        assert_eq!(e.end(), 15);
        assert!(e.is_span());
        let i = TraceEvent {
            kind: EventKind::Instant,
            ..e.clone()
        };
        assert_eq!(i.dur(), 0);
        assert!(!i.is_span());
    }
}
