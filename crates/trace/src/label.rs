//! Labeled metric dimensions: a small, fixed vocabulary of dimensions
//! ([`Dim`]) and an interned per-event label set ([`LabelSet`]).
//!
//! Fleet-scale questions are sliced — per device, per stream, per SM, per
//! job, per transfer mode — so every event can carry one value per
//! dimension, attached at record time from the recorder's ambient label
//! context ([`TraceBuilder::set_label`]). Values are interned once per
//! recording into a string table; an event stores only five `u16` slots,
//! so labeling adds no allocation on the record path.
//!
//! [`TraceBuilder::set_label`]: crate::TraceBuilder::set_label

/// A label dimension. The vocabulary is closed on purpose: a fixed set of
/// dimensions keeps [`LabelSet`] `Copy` and keeps every exporter column
/// stable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Dim {
    /// The simulated device configuration (`"a100_epyc"`, …).
    Device,
    /// The stream / engine lane the work was issued on (`"h2d"`, `"d2h"`,
    /// `"compute"`, or a numeric stream id from a stream schedule).
    Stream,
    /// The streaming multiprocessor a sampled block executed on.
    Sm,
    /// The job index within a batch (pool task or inter-job pipeline slot).
    Job,
    /// The transfer mode of the surrounding run (`"uvm"`, `"async"`, …).
    Mode,
}

impl Dim {
    /// Every dimension, in the canonical export-column order.
    pub const ALL: [Dim; 5] = [Dim::Device, Dim::Stream, Dim::Sm, Dim::Job, Dim::Mode];

    /// The stable lowercase key used in exports (`"device"`, `"mode"` …).
    pub fn key(self) -> &'static str {
        match self {
            Dim::Device => "device",
            Dim::Stream => "stream",
            Dim::Sm => "sm",
            Dim::Job => "job",
            Dim::Mode => "mode",
        }
    }

    /// The position of this dimension in [`Dim::ALL`].
    pub(crate) fn index(self) -> usize {
        self as usize
    }
}

impl std::fmt::Display for Dim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.key())
    }
}

/// One value slot per [`Dim`], each an index into the owning recording's
/// symbol table (see [`Trace::symbols`]). `0` means "unset"; `n` means
/// symbol `n - 1`. The set is `Copy` and eight bytes padded, so stamping
/// it onto every event is free compared to the event's name allocation.
///
/// [`Trace::symbols`]: crate::Trace::symbols
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct LabelSet([u16; 5]);

impl LabelSet {
    /// The set with every dimension unset.
    pub const EMPTY: LabelSet = LabelSet([0; 5]);

    /// Whether every dimension is unset.
    pub fn is_empty(&self) -> bool {
        self.0 == [0; 5]
    }

    /// The symbol index bound to `dim`, if set.
    pub fn get(&self, dim: Dim) -> Option<u16> {
        match self.0[dim.index()] {
            0 => None,
            n => Some(n - 1),
        }
    }

    /// Binds `dim` to symbol index `symbol`.
    pub(crate) fn set(&mut self, dim: Dim, symbol: u16) {
        self.0[dim.index()] = symbol
            .checked_add(1)
            .expect("label symbol table overflowed u16");
    }

    /// Unsets `dim`.
    pub(crate) fn clear(&mut self, dim: Dim) {
        self.0[dim.index()] = 0;
    }

    /// `(dim, symbol)` pairs for every set dimension, in [`Dim::ALL`]
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (Dim, u16)> + '_ {
        Dim::ALL
            .into_iter()
            .filter_map(|d| self.get(d).map(|s| (d, s)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_has_no_values() {
        let s = LabelSet::EMPTY;
        assert!(s.is_empty());
        for d in Dim::ALL {
            assert_eq!(s.get(d), None);
        }
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn set_get_clear_roundtrip() {
        let mut s = LabelSet::EMPTY;
        s.set(Dim::Mode, 3);
        s.set(Dim::Stream, 0);
        assert!(!s.is_empty());
        assert_eq!(s.get(Dim::Mode), Some(3));
        assert_eq!(s.get(Dim::Stream), Some(0));
        assert_eq!(s.get(Dim::Device), None);
        let pairs: Vec<_> = s.iter().collect();
        assert_eq!(pairs, vec![(Dim::Stream, 0), (Dim::Mode, 3)], "ALL order");
        s.clear(Dim::Mode);
        assert_eq!(s.get(Dim::Mode), None);
    }

    #[test]
    fn dim_keys_are_stable() {
        let keys: Vec<_> = Dim::ALL.iter().map(|d| d.key()).collect();
        assert_eq!(keys, vec!["device", "stream", "sm", "job", "mode"]);
        assert_eq!(Dim::Mode.to_string(), "mode");
    }
}
