//! The thread-local trace session — how instrumented simulator code
//! records without threading a recorder through every call signature.
//!
//! Tracing is **off by default**. Instrumentation sites call
//! [`with`], which first reads a thread-local boolean; when no session is
//! active that read is the *entire* cost of the call site, so leaving the
//! instrumentation compiled-in is free in practice. The driver of a run
//! brackets it with [`start`] / [`finish`]:
//!
//! ```
//! use hetsim_trace::{session, Category, TraceConfig};
//!
//! assert!(!session::enabled());
//! session::start(TraceConfig::default());
//! session::with(|b| {
//!     let t = b.track("gpu");
//!     b.phase_span(t, Category::Kernel, "saxpy", 1_000);
//! });
//! let trace = session::finish().expect("a session was active");
//! assert_eq!(trace.category_total(Category::Kernel), 1_000);
//! assert!(!session::enabled());
//! ```
//!
//! The session is per-thread: parallel experiments on different threads
//! record independently and never contend.

use crate::config::TraceConfig;
use crate::recorder::TraceBuilder;
use crate::sink::TraceSink;
use crate::trace::Trace;
use std::cell::{Cell, RefCell};

thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static BUILDER: RefCell<Option<TraceBuilder>> = const { RefCell::new(None) };
}

/// Whether a session is active on this thread. This is the disabled-path
/// fast check: a single thread-local boolean read.
#[inline]
pub fn enabled() -> bool {
    ENABLED.with(Cell::get)
}

/// Starts a session with `config`, replacing (and discarding) any
/// session already active on this thread.
pub fn start(config: TraceConfig) {
    BUILDER.with(|b| *b.borrow_mut() = Some(TraceBuilder::new(config)));
    ENABLED.with(|e| e.set(true));
}

/// Starts a **streaming** session: like [`start`], but completed events
/// drain into `sink` at every chunk boundary instead of overwriting the
/// ring's oldest events when it fills. The returned trace from
/// [`finish`] then reports its event count via
/// [`Trace::streamed`](crate::Trace::streamed) and holds no events
/// itself.
pub fn start_streaming(config: TraceConfig, sink: Box<dyn TraceSink>) {
    BUILDER.with(|b| *b.borrow_mut() = Some(TraceBuilder::new(config).with_sink(sink)));
    ENABLED.with(|e| e.set(true));
}

/// Ends the active session and returns its trace, or `None` if no
/// session was active.
pub fn finish() -> Option<Trace> {
    ENABLED.with(|e| e.set(false));
    BUILDER
        .with(|b| b.borrow_mut().take())
        .map(TraceBuilder::finish)
}

/// Runs `f` against the active session's recorder. Returns `None`
/// without invoking `f` when tracing is disabled — the instrumentation
/// no-op path.
#[inline]
pub fn with<R>(f: impl FnOnce(&mut TraceBuilder) -> R) -> Option<R> {
    if !enabled() {
        return None;
    }
    BUILDER.with(|b| b.borrow_mut().as_mut().map(f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Category;

    #[test]
    fn disabled_by_default_and_with_is_noop() {
        assert!(!enabled());
        let mut ran = false;
        let r = with(|_| ran = true);
        assert!(r.is_none());
        assert!(!ran, "closure must not run when disabled");
        assert!(finish().is_none());
    }

    #[test]
    fn start_record_finish_roundtrip() {
        start(TraceConfig::default());
        assert!(enabled());
        with(|b| {
            let t = b.track("x");
            b.span_at(t, Category::Alloc, "malloc", 0, 42);
        });
        let trace = finish().unwrap();
        assert_eq!(trace.category_total(Category::Alloc), 42);
        assert!(!enabled(), "finish disables the session");
    }

    #[test]
    fn restart_discards_previous_session() {
        start(TraceConfig::default());
        with(|b| {
            let t = b.track("x");
            b.span_at(t, Category::Kernel, "old", 0, 1);
        });
        start(TraceConfig::default());
        let trace = finish().unwrap();
        assert!(trace.is_empty(), "restart begins from a clean buffer");
    }
}
