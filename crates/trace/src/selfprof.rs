//! Host wall-clock self-profiling of the *simulator itself*.
//!
//! Orthogonal to sim-time tracing: [`HostProfiler`] measures how long the
//! simulator's own phases (workload setup, the simulate loop, report
//! building) take in real time, and records them as [`Category::Host`]
//! spans on host tracks (Chrome pid 2). Because wall-clock durations vary
//! run to run, these spans are only recorded when
//! [`TraceConfig::self_profile`] is set — the default keeps traces
//! byte-reproducible.
//!
//! [`Category::Host`]: crate::Category::Host
//! [`TraceConfig::self_profile`]: crate::TraceConfig::self_profile

use crate::event::Category;
use crate::recorder::TraceBuilder;
use crate::session;
use std::time::Instant;

/// Records the wall-clock cost of one sink drain as a `host` span on the
/// `host.trace_export` track, so streaming overhead is itself measured.
/// Called by the recorder after a successful chunk write, only when
/// [`TraceConfig::self_profile`](crate::TraceConfig::self_profile) is set
/// (the span's wall-clock duration varies run to run, so the default
/// keeps streamed output byte-reproducible).
pub(crate) fn export_overhead_span(
    b: &mut TraceBuilder,
    origin: Instant,
    started: Instant,
    chunk_events: usize,
) {
    if b.len() >= b.config().capacity {
        // Never let measuring a drain force another drain (or a drop).
        return;
    }
    let ts = started.duration_since(origin).as_nanos() as u64;
    let dur = started.elapsed().as_nanos() as u64;
    let track = b.host_track("host.trace_export");
    b.span_with(
        track,
        Category::Host,
        "export_chunk",
        ts,
        dur,
        Some(("events", chunk_events as f64)),
    );
}

/// Measures host wall-clock phases and records them into the active
/// thread-local session (when it was configured with `self_profile`).
///
/// All spans share one origin (profiler creation), so they line up on a
/// common wall-clock axis.
#[derive(Debug)]
pub struct HostProfiler {
    origin: Instant,
}

impl HostProfiler {
    /// Creates a profiler; its creation time is wall-clock zero.
    pub fn new() -> Self {
        HostProfiler {
            origin: Instant::now(),
        }
    }

    /// Whether host spans would actually be recorded (a session is active
    /// and opted into self-profiling).
    pub fn active(&self) -> bool {
        session::with(|b| b.config().self_profile).unwrap_or(false)
    }

    /// Runs `f`, recording its wall-clock duration as a `host` span named
    /// `name` on track `host.<name>`. When self-profiling is off, `f`
    /// runs unmeasured — the result is returned either way.
    pub fn phase<R>(&self, name: &'static str, f: impl FnOnce() -> R) -> R {
        if !self.active() {
            return f();
        }
        let start = self.origin.elapsed().as_nanos() as u64;
        let result = f();
        let end = self.origin.elapsed().as_nanos() as u64;
        session::with(|b| {
            let track = b.host_track(&format!("host.{name}"));
            b.span_at(
                track,
                Category::Host,
                name,
                start,
                end.saturating_sub(start),
            );
        });
        result
    }
}

impl Default for HostProfiler {
    fn default() -> Self {
        HostProfiler::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceConfig;

    #[test]
    fn records_nothing_without_opt_in() {
        session::start(TraceConfig::default()); // self_profile = false
        let p = HostProfiler::new();
        assert!(!p.active());
        let v = p.phase("setup", || 7);
        assert_eq!(v, 7);
        let trace = session::finish().unwrap();
        assert_eq!(trace.category_count(Category::Host), 0);
    }

    #[test]
    fn records_host_spans_when_opted_in() {
        session::start(TraceConfig::default().with_self_profile());
        let p = HostProfiler::new();
        assert!(p.active());
        p.phase("simulate", || std::hint::black_box(1 + 1));
        let trace = session::finish().unwrap();
        assert_eq!(trace.category_count(Category::Host), 1);
        let track = trace.find_track("host.simulate").unwrap();
        assert!(trace.tracks()[track.0 as usize].host, "host-flagged track");
        // Host spans never leak into sim accounting.
        assert_eq!(trace.category_total(Category::Host), 0);
        assert_eq!(trace.horizon(), 0);
    }

    #[test]
    fn no_session_means_passthrough() {
        assert!(!session::enabled());
        let p = HostProfiler::new();
        assert_eq!(p.phase("x", || 42), 42);
    }
}
