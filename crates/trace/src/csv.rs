//! Plain-text CSV exporter for spreadsheet-side analysis.
//!
//! One row per event: `ts_ns,dur_ns,track,category,name,value`. Spans put
//! their duration in `dur_ns`, counters their sample in `value`; instants
//! leave both blank-equivalent (zero / empty). Fields containing commas or
//! quotes are quoted per RFC 4180.

use crate::event::EventKind;
use crate::trace::Trace;
use std::fmt::Write as _;

/// Renders `trace` as CSV with a header row.
pub fn to_csv(trace: &Trace) -> String {
    let mut out = String::from("ts_ns,dur_ns,track,category,name,value\n");
    for ev in trace.events() {
        let track = trace.track_name(ev.track);
        let (dur, value) = match ev.kind {
            EventKind::Span { dur } => (dur.to_string(), String::new()),
            EventKind::Instant => (String::new(), String::new()),
            EventKind::Counter { value } => (String::new(), format!("{value}")),
        };
        let _ = writeln!(
            out,
            "{},{},{},{},{},{}",
            ev.ts,
            dur,
            field(track),
            ev.cat.name(),
            field(&ev.name),
            value
        );
    }
    out
}

fn field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Category, TraceBuilder, TraceConfig};

    #[test]
    fn rows_cover_all_kinds() {
        let mut b = TraceBuilder::new(TraceConfig::default());
        let t = b.track("host");
        b.span_at(t, Category::Memcpy, "h2d", 0, 400);
        b.instant_at(t, Category::Mem, "spill", 10, None);
        b.counter_at("faults", 20, 2.0);
        let csv = b.finish().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "ts_ns,dur_ns,track,category,name,value");
        assert_eq!(lines[1], "0,400,host,memcpy,h2d,");
        assert_eq!(lines[2], "10,,host,mem,spill,");
        assert_eq!(lines[3], "20,,metrics,counter,faults,2");
    }

    #[test]
    fn fields_with_commas_are_quoted() {
        assert_eq!(field("a,b"), "\"a,b\"");
        assert_eq!(field("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(field("plain"), "plain");
    }
}
