//! Plain-text CSV exporter for spreadsheet-side analysis.
//!
//! One row per event: `ts_ns,dur_ns,track,category,name,value,labels`.
//! Spans put their duration in `dur_ns`, counters their sample in
//! `value`; instants leave both blank-equivalent (zero / empty). The
//! `labels` column renders the event's label dimensions as
//! `dim=value;dim=value` pairs in [`Dim::ALL`] order. Fields containing
//! commas or quotes are quoted per RFC 4180. When events were lost to
//! ring-buffer overwrite, a trailing `# dropped,N` comment row embeds the
//! drop count so truncation is visible in the artifact itself.
//!
//! [`Dim::ALL`]: crate::Dim::ALL

use crate::event::{EventKind, TraceEvent};
use crate::trace::Trace;
use std::fmt::Write as _;

/// Renders `trace` as CSV with a header row.
pub fn to_csv(trace: &Trace) -> String {
    let mut out = String::from("ts_ns,dur_ns,track,category,name,value,labels\n");
    for ev in trace.events() {
        let track = trace.track_name(ev.track);
        let (dur, value) = match ev.kind {
            EventKind::Span { dur } => (dur.to_string(), String::new()),
            EventKind::Instant => (String::new(), String::new()),
            EventKind::Counter { value } => (String::new(), format!("{value}")),
        };
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{}",
            ev.ts,
            dur,
            field(track),
            ev.cat.name(),
            field(&ev.name),
            value,
            field(&labels_field(trace, ev))
        );
    }
    if trace.dropped() > 0 {
        let _ = writeln!(out, "# dropped,{}", trace.dropped());
    }
    out
}

fn labels_field(trace: &Trace, ev: &TraceEvent) -> String {
    let mut out = String::new();
    for (dim, value) in trace.labels(ev) {
        if !out.is_empty() {
            out.push(';');
        }
        out.push_str(dim.key());
        out.push('=');
        out.push_str(value);
    }
    out
}

fn field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Category, Dim, TraceBuilder, TraceConfig};

    #[test]
    fn rows_cover_all_kinds() {
        let mut b = TraceBuilder::new(TraceConfig::default());
        let t = b.track("host");
        b.span_at(t, Category::Memcpy, "h2d", 0, 400);
        b.instant_at(t, Category::Mem, "spill", 10, None);
        b.counter_at("faults", 20, 2.0);
        let csv = b.finish().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "ts_ns,dur_ns,track,category,name,value,labels");
        assert_eq!(lines[1], "0,400,host,memcpy,h2d,,");
        assert_eq!(lines[2], "10,,host,mem,spill,,");
        assert_eq!(lines[3], "20,,metrics,counter,faults,2,");
        assert_eq!(lines.len(), 4, "no drop footer when nothing dropped");
    }

    #[test]
    fn labels_render_in_dim_order() {
        let mut b = TraceBuilder::new(TraceConfig::default());
        let t = b.track("runtime");
        b.set_label(Dim::Mode, "uvm");
        b.set_label(Dim::Stream, "h2d");
        b.span_at(t, Category::Memcpy, "h2d", 0, 5);
        let csv = b.finish().to_csv();
        assert!(
            csv.contains("0,5,runtime,memcpy,h2d,,stream=h2d;mode=uvm\n"),
            "{csv}"
        );
    }

    #[test]
    fn drop_count_embedded_as_footer() {
        let mut b = TraceBuilder::new(TraceConfig::default().with_capacity(2));
        let t = b.track("x");
        for i in 0..5u64 {
            b.span_at(t, Category::Kernel, "k", i, 1);
        }
        let csv = b.finish().to_csv();
        assert!(csv.ends_with("# dropped,3\n"), "{csv}");
    }

    #[test]
    fn fields_with_commas_are_quoted() {
        assert_eq!(field("a,b"), "\"a,b\"");
        assert_eq!(field("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(field("plain"), "plain");
    }
}
