//! Trace-recorded kernels: capture a kernel model's address streams and
//! replay them later — or load a trace produced by an external tool.
//!
//! The paper's methodology is profiling-based; this module is the
//! simulator's equivalent of attaching a profiler. [`KernelTrace::record`]
//! snapshots the per-tile access streams of sampled blocks from any
//! [`KernelModel`]; the trace itself implements `KernelModel`, so it can be
//! executed, diffed, or serialized to a plain-text format
//! ([`KernelTrace::to_trace_text`] / [`KernelTrace::from_trace_text`]) that
//! external tracers can also emit — one line per access:
//!
//! ```text
//! S L 0x10000000080     # stream load
//! G L 0x10000000100     # staged-form stream load (halo overfetch)
//! L S 0x20000000000     # local store
//! T                     # tile boundary
//! B                     # block boundary
//! ```
//!
//! `G` records capture the kernel's staged-form stream (the one `cp.async`
//! rewrites execute); when absent, the staged stream equals the plain one.

use crate::kernel::{KernelModel, KernelStyle, LaunchConfig, TileOps};
use hetsim_mem::addr::MemAccess;
use hetsim_uvm::prefetch::Regularity;
use std::fmt;

/// A recorded (or externally supplied) kernel trace.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelTrace {
    name: String,
    launch: LaunchConfig,
    ops: TileOps,
    regularity: Regularity,
    standard_style: KernelStyle,
    invocations: u64,
    /// Per recorded block, per tile, the (stream, staged stream, local)
    /// access lists.
    blocks: Vec<Vec<TileRecord>>,
}

type TileRecord = (Vec<MemAccess>, Vec<MemAccess>, Vec<MemAccess>);

/// Error from parsing a textual trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    line: usize,
    message: String,
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseTraceError {}

impl KernelTrace {
    /// Records `sample_blocks` evenly spread blocks of `kernel`.
    ///
    /// # Panics
    ///
    /// Panics if `sample_blocks` is zero.
    pub fn record(kernel: &dyn KernelModel, sample_blocks: u64) -> Self {
        assert!(sample_blocks > 0, "must record at least one block");
        let launch = kernel.launch();
        let grid = launch.grid_blocks;
        let samples = sample_blocks.min(grid);
        let tiles = kernel.tiles_per_block().max(1);
        let mut blocks = Vec::with_capacity(samples as usize);
        for s in 0..samples {
            let block = s * grid / samples;
            let mut per_tile = Vec::with_capacity(tiles as usize);
            for tile in 0..tiles {
                let mut stream = Vec::new();
                let mut staged = Vec::new();
                let mut local = Vec::new();
                kernel.stream_accesses(block, tile, &mut stream);
                kernel.staged_stream_accesses(block, tile, &mut staged);
                kernel.local_accesses(block, tile, &mut local);
                per_tile.push((stream, staged, local));
            }
            blocks.push(per_tile);
        }
        KernelTrace {
            name: format!("{}.trace", kernel.name()),
            launch,
            ops: kernel.tile_ops(),
            regularity: kernel.regularity(),
            standard_style: kernel.standard_style(),
            invocations: kernel.invocations(),
            blocks,
        }
    }

    /// Number of recorded blocks.
    pub fn recorded_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Total recorded accesses across blocks and tiles.
    pub fn recorded_accesses(&self) -> usize {
        self.blocks
            .iter()
            .flat_map(|b| b.iter())
            .map(|(s, _, l)| s.len() + l.len())
            .sum()
    }

    /// Serializes to the plain-text trace format.
    pub fn to_trace_text(&self) -> String {
        let mut out = String::new();
        for block in &self.blocks {
            for (stream, staged, local) in block {
                for a in stream {
                    push_access(&mut out, 'S', a);
                }
                if staged != stream {
                    for a in staged {
                        push_access(&mut out, 'G', a);
                    }
                }
                for a in local {
                    push_access(&mut out, 'L', a);
                }
                out.push_str("T\n");
            }
            out.push_str("B\n");
        }
        out
    }

    /// Parses the plain-text trace format. `launch`, `ops`, and the other
    /// kernel-level attributes must be supplied by the caller — the trace
    /// carries only the access streams.
    ///
    /// # Errors
    ///
    /// Returns [`ParseTraceError`] on malformed lines.
    pub fn from_trace_text(
        name: &str,
        launch: LaunchConfig,
        ops: TileOps,
        regularity: Regularity,
        text: &str,
    ) -> Result<Self, ParseTraceError> {
        let mut blocks = Vec::new();
        let mut tiles: Vec<TileRecord> = Vec::new();
        let mut stream = Vec::new();
        let mut staged: Vec<MemAccess> = Vec::new();
        let mut local = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let err = |message: &str| ParseTraceError {
                line: i + 1,
                message: message.to_string(),
            };
            match line.chars().next().unwrap() {
                'T' => {
                    let stream = std::mem::take(&mut stream);
                    let staged = std::mem::take(&mut staged);
                    let staged = if staged.is_empty() {
                        stream.clone()
                    } else {
                        staged
                    };
                    tiles.push((stream, staged, std::mem::take(&mut local)));
                }
                'B' => {
                    if !stream.is_empty() || !staged.is_empty() || !local.is_empty() {
                        let stream = std::mem::take(&mut stream);
                        let staged = std::mem::take(&mut staged);
                        let staged = if staged.is_empty() {
                            stream.clone()
                        } else {
                            staged
                        };
                        tiles.push((stream, staged, std::mem::take(&mut local)));
                    }
                    if tiles.is_empty() {
                        return Err(err("block with no tiles"));
                    }
                    blocks.push(std::mem::take(&mut tiles));
                }
                'S' | 'L' | 'G' => {
                    let mut parts = line.split_whitespace();
                    let class = parts.next().unwrap();
                    let kind = parts.next().ok_or_else(|| err("missing access kind"))?;
                    let addr = parts.next().ok_or_else(|| err("missing address"))?;
                    let addr = addr.strip_prefix("0x").unwrap_or(addr);
                    let addr = u64::from_str_radix(addr, 16).map_err(|_| err("bad hex address"))?;
                    let access = match kind {
                        "L" => MemAccess::global_load(addr),
                        "S" => MemAccess::global_store(addr),
                        _ => return Err(err("access kind must be L or S")),
                    };
                    match class {
                        "S" => stream.push(access),
                        "G" => staged.push(access),
                        _ => local.push(access),
                    }
                }
                _ => return Err(err("unknown record type")),
            }
        }
        if !stream.is_empty() || !staged.is_empty() || !local.is_empty() || !tiles.is_empty() {
            return Err(ParseTraceError {
                line: text.lines().count(),
                message: "trace ends mid-block (missing B)".to_string(),
            });
        }
        if blocks.is_empty() {
            return Err(ParseTraceError {
                line: 0,
                message: "empty trace".to_string(),
            });
        }
        Ok(KernelTrace {
            name: name.to_string(),
            launch,
            ops,
            regularity,
            standard_style: KernelStyle::Direct,
            invocations: 1,
            blocks,
        })
    }

    fn block_slot(&self, block: u64) -> &Vec<TileRecord> {
        // Unrecorded blocks replay a recorded one (round robin), the same
        // representativeness assumption the sampling executor makes.
        &self.blocks[(block % self.blocks.len() as u64) as usize]
    }
}

fn push_access(out: &mut String, class: char, a: &MemAccess) {
    let kind = if a.kind.is_load() { 'L' } else { 'S' };
    out.push_str(&format!("{class} {kind} {:#x}\n", a.addr.as_u64()));
}

impl KernelModel for KernelTrace {
    fn name(&self) -> &str {
        &self.name
    }
    fn launch(&self) -> LaunchConfig {
        self.launch
    }
    fn tiles_per_block(&self) -> u64 {
        self.blocks[0].len() as u64
    }
    fn stream_accesses(&self, block: u64, tile: u64, out: &mut Vec<MemAccess>) {
        let tiles = self.block_slot(block);
        if let Some((stream, _, _)) = tiles.get(tile as usize) {
            out.extend_from_slice(stream);
        }
    }
    fn staged_stream_accesses(&self, block: u64, tile: u64, out: &mut Vec<MemAccess>) {
        let tiles = self.block_slot(block);
        if let Some((_, staged, _)) = tiles.get(tile as usize) {
            out.extend_from_slice(staged);
        }
    }
    fn local_accesses(&self, block: u64, tile: u64, out: &mut Vec<MemAccess>) {
        let tiles = self.block_slot(block);
        if let Some((_, _, local)) = tiles.get(tile as usize) {
            out.extend_from_slice(local);
        }
    }
    fn tile_ops(&self) -> TileOps {
        self.ops
    }
    fn regularity(&self) -> Regularity {
        self.regularity
    }
    fn standard_style(&self) -> KernelStyle {
        self.standard_style
    }
    fn invocations(&self) -> u64 {
        self.invocations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{ExecEnv, KernelExecutor};
    use crate::GpuConfig;

    struct TinyKernel;

    impl KernelModel for TinyKernel {
        fn name(&self) -> &str {
            "tiny"
        }
        fn launch(&self) -> LaunchConfig {
            LaunchConfig::new(16, 64, 0)
        }
        fn tiles_per_block(&self) -> u64 {
            2
        }
        fn stream_accesses(&self, block: u64, tile: u64, out: &mut Vec<MemAccess>) {
            for i in 0..4 {
                out.push(MemAccess::global_load((block * 2 + tile) * 512 + i * 128));
            }
        }
        fn local_accesses(&self, block: u64, tile: u64, out: &mut Vec<MemAccess>) {
            out.push(MemAccess::global_store(
                (1 << 30) + (block * 2 + tile) * 128,
            ));
        }
        fn tile_ops(&self) -> TileOps {
            TileOps::new(64.0, 32.0, 8.0)
        }
        fn regularity(&self) -> Regularity {
            Regularity::Regular
        }
    }

    #[test]
    fn record_captures_streams() {
        let t = KernelTrace::record(&TinyKernel, 4);
        assert_eq!(t.recorded_blocks(), 4);
        assert_eq!(t.tiles_per_block(), 2);
        // 4 blocks x 2 tiles x (4 stream + 1 local).
        assert_eq!(t.recorded_accesses(), 4 * 2 * 5);
    }

    #[test]
    fn replay_matches_original_for_recorded_blocks() {
        let t = KernelTrace::record(&TinyKernel, 16);
        for block in 0..16 {
            for tile in 0..2 {
                let mut orig = Vec::new();
                let mut replay = Vec::new();
                TinyKernel.stream_accesses(block, tile, &mut orig);
                t.stream_accesses(block, tile, &mut replay);
                assert_eq!(orig, replay, "block {block} tile {tile}");
            }
        }
    }

    #[test]
    fn executing_trace_matches_executing_original() {
        let exec = KernelExecutor::new(GpuConfig::a100());
        let t = KernelTrace::record(&TinyKernel, 16);
        let a = exec.execute(&TinyKernel, KernelStyle::Direct, &ExecEnv::standard());
        let b = exec.execute(&t, KernelStyle::Direct, &ExecEnv::standard());
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.l1, b.l1);
    }

    #[test]
    fn text_round_trip() {
        let t = KernelTrace::record(&TinyKernel, 3);
        let text = t.to_trace_text();
        let parsed = KernelTrace::from_trace_text(
            "tiny.trace",
            TinyKernel.launch(),
            TinyKernel.tile_ops(),
            Regularity::Regular,
            &text,
        )
        .expect("round trip");
        assert_eq!(parsed.recorded_blocks(), 3);
        assert_eq!(parsed.recorded_accesses(), t.recorded_accesses());
        let mut a = Vec::new();
        let mut b = Vec::new();
        t.stream_accesses(1, 1, &mut a);
        parsed.stream_accesses(1, 1, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn parse_rejects_malformed() {
        let launch = LaunchConfig::new(1, 32, 0);
        let ops = TileOps::default();
        let bad = |text: &str| {
            KernelTrace::from_trace_text("x", launch, ops, Regularity::Regular, text).unwrap_err()
        };
        assert!(bad("").to_string().contains("empty"));
        assert!(bad("S L zzz\nT\nB\n").to_string().contains("bad hex"));
        assert!(bad("S L 0x10\n").to_string().contains("missing B"));
        assert!(bad("Q L 0x10\nT\nB\n").to_string().contains("unknown"));
        assert!(bad("S X 0x10\nT\nB\n").to_string().contains("L or S"));
        assert!(bad("B\n").to_string().contains("no tiles"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# header\nS L 0x100\n\nT # end of tile\nB\n";
        let t = KernelTrace::from_trace_text(
            "c",
            LaunchConfig::new(1, 32, 0),
            TileOps::default(),
            Regularity::Regular,
            text,
        )
        .unwrap();
        assert_eq!(t.recorded_accesses(), 1);
    }
}
