//! # hetsim-gpu
//!
//! The GPU execution model of the hetsim simulator.
//!
//! Kernels are described by workloads as *tile programs* (the
//! [`KernelModel`] trait): per block, a sequence of tiles, each with a
//! streaming address stream (bulk input data, touched once), a local address
//! stream (re-referenced data and output stores) and an arithmetic budget.
//! The [`exec`] module replays those streams through real L1/L2 cache models
//! and combines the resulting pipe costs according to the *kernel style*:
//!
//! * [`KernelStyle::Direct`] — plain global loads through L1
//!   (`ld.global` → register → compute);
//! * [`KernelStyle::StagedSync`] — classic shared-memory tiling with
//!   `__syncthreads()` between fetch and compute phases;
//! * [`KernelStyle::StagedAsync`] — the paper's Async Memcpy (`cp.async`)
//!   pipeline: fetches bypass L1 into shared memory and overlap with
//!   compute, at the price of extra control instructions.
//!
//! The style differences are exactly the mechanisms the paper measures:
//! control-instruction inflation (its Fig 9), L1 miss-rate reduction from
//! staging (Fig 10), latency exposure at low thread counts (Fig 12), and
//! shared-memory/L1 carveout sensitivity (Fig 13).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod exec;
pub mod kernel;
pub mod trace;

pub use config::GpuConfig;
pub use exec::{ExecEnv, KernelExecutor, KernelResult};
pub use kernel::{KernelModel, KernelStyle, LaunchConfig, TileOps};
pub use trace::KernelTrace;
