//! The sampled-block kernel executor.
//!
//! [`KernelExecutor::execute`] runs a [`KernelModel`] under a
//! [`KernelStyle`], replaying a sample of the grid's blocks through real
//! L1/L2 cache models and extrapolating to the full grid. The result
//! separates the quantities the paper's analysis needs: kernel time, dynamic
//! instruction mix (Fig 9), L1/L2 hit-miss counters (Fig 10), and the HBM
//! traffic split by path (which determines achieved bandwidth).
//!
//! # Timing model
//!
//! Per block, three pipes are costed in SM cycles:
//!
//! * **fetch** — the streaming input path. Direct and staged-sync kernels
//!   pay the L1 port plus the L2/HBM port for misses, inflated by the
//!   register-file pressure factor and by latency exposure when too few
//!   warps are resident. `cp.async` fetches skip the L1 and the register
//!   file.
//! * **execute** — arithmetic (by per-class throughput), shared-memory
//!   traffic, re-referenced global accesses, and output stores.
//! * **overlap** — the style decides: direct kernels overlap across warps
//!   (`max`), staged-sync kernels serialize phase remainders behind
//!   barriers, staged-async kernels overlap fully and pay control
//!   instructions instead.
//!
//! Device-wide, kernels cannot beat HBM: total traffic divided by the
//! achieved bandwidth of each path bounds the kernel from below.

use crate::config::GpuConfig;
use crate::kernel::{KernelModel, KernelStyle};
use hetsim_counters::{CacheCounters, InstClass, InstructionMix, Occupancy};
use hetsim_engine::time::Nanos;
use hetsim_mem::addr::{AccessKind, MemAccess, MemSpace};
use hetsim_mem::cache::Cache;
use hetsim_mem::tlb::{Tlb, TlbConfig};

/// Environment adjustments imposed by the memory-management mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecEnv {
    /// Multiplier (≥ 1) on memory-pipe cycles for UVM address translation
    /// overhead (driver-side fault filtering, page-table locks).
    pub translation_penalty: f64,
    /// Fraction of streaming HBM read traffic served from a prefetch-warmed
    /// L2 instead (UVM prefetch streams chunks into L2 just ahead of use).
    pub l2_warm_fraction: f64,
    /// When set, every global access also walks a TLB of this geometry and
    /// misses charge page-walk cycles — the mechanistic part of UVM
    /// translation cost. `None` for unmanaged memory (the GPU's native
    /// large mappings effectively never miss).
    pub tlb: Option<TlbConfig>,
}

impl ExecEnv {
    /// No UVM in play: explicit copies, cold L2.
    pub fn standard() -> Self {
        ExecEnv {
            translation_penalty: 1.0,
            l2_warm_fraction: 0.0,
            tlb: None,
        }
    }

    /// Creates an environment, validating ranges.
    ///
    /// # Panics
    ///
    /// Panics if `translation_penalty < 1` or `l2_warm_fraction` is outside
    /// `[0, 1]`.
    pub fn new(translation_penalty: f64, l2_warm_fraction: f64) -> Self {
        assert!(translation_penalty >= 1.0, "translation penalty below 1");
        assert!(
            (0.0..=1.0).contains(&l2_warm_fraction),
            "l2 warm fraction out of [0,1]"
        );
        ExecEnv {
            translation_penalty,
            l2_warm_fraction,
            tlb: None,
        }
    }

    /// Adds a TLB model to the environment (managed-memory runs).
    pub fn with_tlb(mut self, config: TlbConfig) -> Self {
        self.tlb = Some(config);
        self
    }
}

impl Default for ExecEnv {
    fn default() -> Self {
        ExecEnv::standard()
    }
}

/// The outcome of executing one kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelResult {
    /// Kernel wall time (excluding UVM fault stalls, which the runtime adds
    /// on top — they are a property of the memory mode, not the kernel).
    pub time: Nanos,
    /// Kernel time in SM cycles.
    pub cycles: f64,
    /// Extrapolated dynamic instruction mix.
    pub inst: InstructionMix,
    /// L1 hit/miss counters over the sampled blocks.
    pub l1: CacheCounters,
    /// L2 hit/miss counters over the sampled blocks.
    pub l2: CacheCounters,
    /// Extrapolated HBM read traffic, bytes.
    pub hbm_load_bytes: u64,
    /// Extrapolated HBM write traffic, bytes.
    pub hbm_store_bytes: u64,
    /// Extrapolated TLB misses (zero when no TLB was modelled).
    pub tlb_misses: u64,
    /// Launch-configuration occupancy bound.
    pub theoretical_occupancy: f64,
}

/// Executes kernels on a GPU configuration by sampling blocks.
#[derive(Debug, Clone)]
pub struct KernelExecutor {
    config: GpuConfig,
    sample_blocks: u64,
    max_sampled_tiles: u64,
}

#[derive(Debug, Default, Clone, Copy)]
struct BlockAccum {
    // fetch pipe
    stream_l1_accesses: f64,
    stream_l2_bytes: f64,
    stream_hbm_bytes: f64,
    // execute pipe
    local_l1_accesses: f64,
    local_l2_bytes: f64,
    local_hbm_load_bytes: f64,
    hbm_store_bytes: f64,
    shared_bytes: f64,
    // translation
    tlb_walk_cycles: f64,
    tlb_misses: f64,
    // ops
    fp: f64,
    int: f64,
    control: f64,
}

impl KernelExecutor {
    /// Creates an executor with the default sampling width (6 blocks,
    /// up to 96 tiles per block).
    pub fn new(config: GpuConfig) -> Self {
        KernelExecutor {
            config,
            sample_blocks: 6,
            max_sampled_tiles: 96,
        }
    }

    /// Overrides the number of sampled blocks (ablation: sampling error).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn with_sample_blocks(mut self, n: u64) -> Self {
        assert!(n > 0, "must sample at least one block");
        self.sample_blocks = n;
        self
    }

    /// Overrides how many tiles per block are replayed before
    /// extrapolating (ablation: sampling error).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn with_max_sampled_tiles(mut self, n: u64) -> Self {
        assert!(n > 0, "must sample at least one tile");
        self.max_sampled_tiles = n;
        self
    }

    /// The GPU configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// Executes `kernel` under `style` in environment `env`.
    pub fn execute(
        &self,
        kernel: &dyn KernelModel,
        style: KernelStyle,
        env: &ExecEnv,
    ) -> KernelResult {
        let cfg = &self.config;
        let launch = kernel.launch();
        let grid = launch.grid_blocks;
        let samples = self.sample_blocks.min(grid);
        let line = cfg.l1_line as f64;

        let mut l1 = Cache::new(cfg.l1_config());
        let mut l2 = Cache::new(cfg.l2);
        let mut inst = InstructionMix::new();
        let mut total = BlockAccum::default();
        let mut sum_block_cycles = 0.0;

        let resident = cfg.resident_blocks(launch.threads_per_block, launch.shared_bytes_per_block);
        let waves = grid.div_ceil(cfg.sm_count as u64);
        let resident_eff = (resident as u64).min(waves).max(1) as f64;
        let warps_per_block = launch.warps_per_block(cfg.warp_size) as f64;
        let active_warps = warps_per_block * resident_eff;

        let tiles = kernel.tiles_per_block().max(1);
        let sampled_tiles = tiles.min(self.max_sampled_tiles);
        let tile_scale = tiles as f64 / sampled_tiles as f64;
        let mut stream_buf = Vec::new();
        let mut local_buf = Vec::new();

        for s in 0..samples {
            // Spread sampled blocks across the grid.
            let block = s * grid / samples;
            let mut acc = BlockAccum::default();
            // Each sampled block starts with a cold L1 (a fresh block on an
            // SM inherits little) but shares the device-wide L2.
            l1.flush();

            let mut tlb = env.tlb.map(Tlb::new);

            for tile in 0..sampled_tiles {
                stream_buf.clear();
                local_buf.clear();
                if style.is_staged() {
                    kernel.staged_stream_accesses(block, tile, &mut stream_buf);
                } else {
                    kernel.stream_accesses(block, tile, &mut stream_buf);
                }
                kernel.local_accesses(block, tile, &mut local_buf);

                if let Some(tlb) = tlb.as_mut() {
                    // Every global access translates, cp.async included.
                    for a in stream_buf.iter().chain(local_buf.iter()) {
                        if a.space == MemSpace::Global {
                            tlb.access(a.addr);
                        }
                    }
                }

                for a in &stream_buf {
                    self.replay_stream(a, style, &mut l1, &mut l2, &mut acc, &mut inst, line);
                }
                for a in &local_buf {
                    self.replay_local(a, style, &mut l1, &mut l2, &mut acc, &mut inst, line);
                }

                let ops = kernel.tile_ops();
                acc.fp += ops.fp;
                acc.int += ops.int;
                acc.control += ops.control;
                inst.record(InstClass::Fp, ops.fp.round() as u64);
                inst.record(InstClass::Int, ops.int.round() as u64);
                inst.record(InstClass::Control, ops.control.round() as u64);

                if style == KernelStyle::StagedAsync {
                    let extra_ctrl =
                        cfg.async_ctrl_per_thread_tile * launch.threads_per_block as f64;
                    let extra_int = cfg.async_int_per_thread_tile * launch.threads_per_block as f64;
                    acc.control += extra_ctrl;
                    acc.int += extra_int;
                    inst.record(InstClass::Control, extra_ctrl.round() as u64);
                    inst.record(InstClass::Int, extra_int.round() as u64);
                }
            }

            if let Some(tlb) = tlb.as_ref() {
                acc.tlb_walk_cycles = tlb.walk_cycles();
                acc.tlb_misses = tlb.misses() as f64;
            }

            // Extrapolate the sampled tiles to the block's full tile count.
            if tile_scale > 1.0 {
                acc.scale(tile_scale);
            }

            // A prefetch-warmed L2 absorbs part of the streaming read
            // traffic that would otherwise come from HBM.
            if env.l2_warm_fraction > 0.0 {
                let warm = acc.stream_hbm_bytes * env.l2_warm_fraction;
                acc.stream_hbm_bytes -= warm;
                acc.stream_l2_bytes += warm;
            }

            let block_cycles =
                self.block_cycles(&acc, style, env, tiles, active_warps, resident_eff, line);
            sum_block_cycles += block_cycles;
            if hetsim_trace::session::enabled() {
                let dur = cfg.clock.cycles_f64_to_nanos(block_cycles).as_nanos();
                hetsim_trace::session::with(|b| {
                    let track = b.track("gpu.blocks");
                    b.detail_span(
                        track,
                        hetsim_trace::Category::Tile,
                        format!("block{block}"),
                        dur,
                        Some(("cycles", block_cycles)),
                    );
                });
            }
            accumulate(&mut total, &acc);
        }

        // `total` already carries the tile extrapolation (the accumulators
        // were scaled per block); instructions were recorded per sampled
        // tile and need both factors.
        let scale = grid as f64 / samples as f64;
        let inst_scale = scale * tile_scale;
        let avg_block_cycles = sum_block_cycles / samples as f64;
        let active_sms = (cfg.sm_count as u64).min(grid) as f64;
        let per_sm_cycles = avg_block_cycles * grid as f64 / active_sms;

        // Device-wide HBM bound with per-path achieved bandwidth: the
        // style of the *streaming* path decides how efficiently the kernel
        // can drive DRAM.
        let stream_eff = match style {
            KernelStyle::StagedAsync => cfg.hbm_eff_async_load,
            KernelStyle::StagedSync => cfg.hbm_eff_sync_load,
            KernelStyle::Direct => cfg.hbm_eff_direct_load,
        };
        let hbm_bpc = cfg.hbm_bytes_per_cycle_device();
        let device_cycles = scale
            * (total.stream_hbm_bytes / stream_eff
                + total.local_hbm_load_bytes / cfg.hbm_eff_direct_load
                + total.hbm_store_bytes / cfg.hbm_eff_store)
            / hbm_bpc
            * env.translation_penalty;

        let cycles = per_sm_cycles.max(device_cycles);
        let theoretical = Occupancy::theoretical_from_limits(
            launch.threads_per_block,
            launch.shared_bytes_per_block,
            cfg.warp_size,
            cfg.max_warps_per_sm,
            cfg.max_threads_per_sm,
            cfg.max_blocks_per_sm,
            cfg.carveout.shared_bytes(),
        );

        let l1 = l1.counters();
        let l2 = l2.counters();
        hetsim_trace::session::with(|b| {
            b.counter("gpu.l1_load_miss_rate", l1.load_miss_rate());
            b.counter("gpu.l2_load_miss_rate", l2.load_miss_rate());
            b.counter("gpu.theoretical_occupancy", theoretical);
            b.counter("gpu.tlb_misses", (scale * total.tlb_misses).round());
        });

        KernelResult {
            time: cfg.clock.cycles_f64_to_nanos(cycles),
            cycles,
            inst: inst.scale(inst_scale),
            l1,
            l2,
            hbm_load_bytes: (scale * (total.stream_hbm_bytes + total.local_hbm_load_bytes)).round()
                as u64,
            hbm_store_bytes: (scale * total.hbm_store_bytes).round() as u64,
            tlb_misses: (scale * total.tlb_misses).round() as u64,
            theoretical_occupancy: theoretical,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn replay_stream(
        &self,
        a: &MemAccess,
        style: KernelStyle,
        l1: &mut Cache,
        l2: &mut Cache,
        acc: &mut BlockAccum,
        inst: &mut InstructionMix,
        line: f64,
    ) {
        inst.record(InstClass::MemLoad, 1);
        match style {
            KernelStyle::StagedAsync => {
                // cp.async: bypass L1 and the register file entirely.
                if l2.access(a.addr, AccessKind::Load) {
                    acc.stream_l2_bytes += line;
                } else {
                    acc.stream_hbm_bytes += line;
                }
                // Data lands in shared memory and is read back by compute.
                acc.shared_bytes += 2.0 * line;
            }
            KernelStyle::StagedSync => {
                // ld.global -> register -> st.shared.
                if !l1.access(a.addr, AccessKind::Load) {
                    if l2.access(a.addr, AccessKind::Load) {
                        acc.stream_l2_bytes += line;
                    } else {
                        acc.stream_hbm_bytes += line;
                    }
                }
                acc.stream_l1_accesses += 1.0;
                acc.shared_bytes += 2.0 * line;
                inst.record(InstClass::MemStore, 1); // st.shared
            }
            KernelStyle::Direct => {
                if !l1.access(a.addr, AccessKind::Load) {
                    if l2.access(a.addr, AccessKind::Load) {
                        acc.stream_l2_bytes += line;
                    } else {
                        acc.stream_hbm_bytes += line;
                    }
                }
                acc.stream_l1_accesses += 1.0;
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn replay_local(
        &self,
        a: &MemAccess,
        style: KernelStyle,
        l1: &mut Cache,
        l2: &mut Cache,
        acc: &mut BlockAccum,
        inst: &mut InstructionMix,
        line: f64,
    ) {
        let staged = style.is_staged();
        match a.kind {
            AccessKind::Load => {
                inst.record(InstClass::MemLoad, 1);
                if staged || a.space == MemSpace::Shared {
                    // Re-referenced data was staged: serve from shared memory.
                    acc.shared_bytes += line;
                } else if !l1.access(a.addr, AccessKind::Load) {
                    if l2.access(a.addr, AccessKind::Load) {
                        acc.local_l2_bytes += line;
                    } else {
                        acc.local_hbm_load_bytes += line;
                    }
                    acc.local_l1_accesses += 1.0;
                } else {
                    acc.local_l1_accesses += 1.0;
                }
            }
            AccessKind::Store => {
                inst.record(InstClass::MemStore, 1);
                if a.space == MemSpace::Shared {
                    acc.shared_bytes += line;
                    return;
                }
                // Output stores always go to global memory.
                if !l1.access(a.addr, AccessKind::Store) {
                    if !l2.access(a.addr, AccessKind::Store) {
                        acc.hbm_store_bytes += line;
                    } else {
                        acc.local_l2_bytes += line;
                    }
                }
                acc.local_l1_accesses += 1.0;
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn block_cycles(
        &self,
        acc: &BlockAccum,
        style: KernelStyle,
        env: &ExecEnv,
        tiles: u64,
        active_warps: f64,
        resident_eff: f64,
        line: f64,
    ) -> f64 {
        let cfg = &self.config;
        let _ = resident_eff;

        // Fetch pipe.
        let fetch = match style {
            KernelStyle::StagedAsync => {
                let exposure = (cfg.warps_to_hide_latency_async / active_warps).max(1.0);
                (acc.stream_l2_bytes + acc.stream_hbm_bytes)
                    / cfg.l2_bytes_per_cycle
                    / cfg.async_bypass_efficiency
                    * exposure
                    * env.translation_penalty
            }
            _ => {
                let exposure = (cfg.warps_to_hide_latency / active_warps).max(1.0);
                (acc.stream_l1_accesses * (line / cfg.l1_bytes_per_cycle)
                    + (acc.stream_l2_bytes + acc.stream_hbm_bytes) / cfg.l2_bytes_per_cycle)
                    * cfg.rf_pressure_factor
                    * exposure
                    * env.translation_penalty
            }
        };

        // Execute pipe: arithmetic + shared traffic + local/global accesses.
        let exposure_local = (cfg.warps_to_hide_latency / active_warps).max(1.0);
        let local = (acc.local_l1_accesses * (line / cfg.l1_bytes_per_cycle)
            + (acc.local_l2_bytes + acc.local_hbm_load_bytes + acc.hbm_store_bytes)
                / cfg.l2_bytes_per_cycle)
            * exposure_local
            * env.translation_penalty;
        let mut compute = acc.fp / cfg.fp_per_cycle
            + acc.int / cfg.int_per_cycle
            + acc.control / cfg.control_per_cycle
            + acc.shared_bytes / cfg.l1_bytes_per_cycle
            + local;
        if style == KernelStyle::StagedSync {
            compute += tiles as f64 * cfg.sync_barrier_cycles;
        }

        if hetsim_trace::session::enabled() {
            // Expose the two pipes of the copy pipeline per sampled block:
            // how much of the fetch a style hides is the paper's async-copy
            // story, and it reads directly off these two span lengths.
            let fetch_name = match style {
                KernelStyle::StagedAsync => "cp.async_fetch",
                KernelStyle::StagedSync => "staged_fetch",
                KernelStyle::Direct => "fetch",
            };
            let fetch_ns = cfg.clock.cycles_f64_to_nanos(fetch).as_nanos();
            let compute_ns = cfg.clock.cycles_f64_to_nanos(compute).as_nanos();
            hetsim_trace::session::with(|b| {
                let track = b.track("gpu.pipeline");
                b.detail_span(
                    track,
                    hetsim_trace::Category::Tile,
                    fetch_name,
                    fetch_ns,
                    Some(("cycles", fetch)),
                );
                b.detail_span(
                    track,
                    hetsim_trace::Category::Tile,
                    "compute",
                    compute_ns,
                    Some(("cycles", compute)),
                );
            });
        }

        let base = match style {
            KernelStyle::Direct => fetch.max(compute),
            KernelStyle::StagedSync => {
                fetch.max(compute) + cfg.sync_serialization * fetch.min(compute)
            }
            KernelStyle::StagedAsync => {
                // Double-buffered pipeline: fill one tile, then overlap.
                fetch.max(compute) + fetch.min(compute) / tiles as f64
            }
        };
        // Page walks stall address issue; concurrent warps overlap most of
        // the latency, so the block pays the serialized residue.
        let walks = acc.tlb_walk_cycles / active_warps.max(1.0);
        base + walks + cfg.block_overhead_cycles
    }
}

impl BlockAccum {
    fn scale(&mut self, f: f64) {
        self.tlb_walk_cycles *= f;
        self.tlb_misses *= f;
        self.stream_l1_accesses *= f;
        self.stream_l2_bytes *= f;
        self.stream_hbm_bytes *= f;
        self.local_l1_accesses *= f;
        self.local_l2_bytes *= f;
        self.local_hbm_load_bytes *= f;
        self.hbm_store_bytes *= f;
        self.shared_bytes *= f;
        self.fp *= f;
        self.int *= f;
        self.control *= f;
    }
}

fn accumulate(total: &mut BlockAccum, acc: &BlockAccum) {
    total.stream_l1_accesses += acc.stream_l1_accesses;
    total.stream_l2_bytes += acc.stream_l2_bytes;
    total.stream_hbm_bytes += acc.stream_hbm_bytes;
    total.local_l1_accesses += acc.local_l1_accesses;
    total.local_l2_bytes += acc.local_l2_bytes;
    total.local_hbm_load_bytes += acc.local_hbm_load_bytes;
    total.hbm_store_bytes += acc.hbm_store_bytes;
    total.shared_bytes += acc.shared_bytes;
    total.tlb_walk_cycles += acc.tlb_walk_cycles;
    total.tlb_misses += acc.tlb_misses;
    total.fp += acc.fp;
    total.int += acc.int;
    total.control += acc.control;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{LaunchConfig, TileOps};
    use hetsim_uvm::prefetch::Regularity;

    /// A synthetic streaming kernel: each block reads `lines_per_tile`
    /// fresh lines per tile and writes the same amount back.
    struct StreamKernel {
        launch: LaunchConfig,
        tiles: u64,
        lines_per_tile: u64,
        ops_per_tile: TileOps,
    }

    impl StreamKernel {
        fn new(blocks: u64, threads: u32, tiles: u64, lines: u64, fp: f64) -> Self {
            StreamKernel {
                launch: LaunchConfig::new(blocks, threads, 32 * 1024),
                tiles,
                lines_per_tile: lines,
                ops_per_tile: TileOps::new(fp, fp / 2.0, fp / 8.0),
            }
        }
    }

    impl KernelModel for StreamKernel {
        fn name(&self) -> &str {
            "stream_test"
        }
        fn launch(&self) -> LaunchConfig {
            self.launch
        }
        fn tiles_per_block(&self) -> u64 {
            self.tiles
        }
        fn stream_accesses(&self, block: u64, tile: u64, out: &mut Vec<MemAccess>) {
            let base = (block * self.tiles + tile) * self.lines_per_tile * 128;
            for i in 0..self.lines_per_tile {
                out.push(MemAccess::global_load(base + i * 128));
            }
        }
        fn local_accesses(&self, block: u64, tile: u64, out: &mut Vec<MemAccess>) {
            let out_base = (1u64 << 40) + (block * self.tiles + tile) * self.lines_per_tile * 128;
            for i in 0..self.lines_per_tile {
                out.push(MemAccess::global_store(out_base + i * 128));
            }
        }
        fn tile_ops(&self) -> TileOps {
            self.ops_per_tile
        }
        fn regularity(&self) -> Regularity {
            Regularity::Regular
        }
        fn standard_style(&self) -> KernelStyle {
            KernelStyle::StagedSync
        }
    }

    fn exec() -> KernelExecutor {
        KernelExecutor::new(GpuConfig::a100())
    }

    #[test]
    fn streaming_kernel_misses_everywhere() {
        let k = StreamKernel::new(512, 256, 8, 64, 1000.0);
        let r = exec().execute(&k, KernelStyle::Direct, &ExecEnv::standard());
        assert!(r.l1.load_miss_rate() > 0.9, "fresh lines never hit");
        assert!(r.time > Nanos::ZERO);
        assert!(r.hbm_load_bytes > 0);
        assert!(r.hbm_store_bytes > 0);
    }

    #[test]
    fn async_beats_sync_for_balanced_streaming() {
        // Fetch-heavy streaming with comparable compute: the double buffer
        // should overlap and win (the paper's vector_seq result).
        let k = StreamKernel::new(4096, 256, 16, 64, 6000.0);
        let e = exec();
        let sync = e.execute(&k, KernelStyle::StagedSync, &ExecEnv::standard());
        let async_ = e.execute(&k, KernelStyle::StagedAsync, &ExecEnv::standard());
        assert!(
            async_.cycles < sync.cycles,
            "async {} !< sync {}",
            async_.cycles,
            sync.cycles
        );
    }

    #[test]
    fn async_adds_control_instructions() {
        let k = StreamKernel::new(512, 256, 16, 64, 1000.0);
        let e = exec();
        let sync = e.execute(&k, KernelStyle::StagedSync, &ExecEnv::standard());
        let async_ = e.execute(&k, KernelStyle::StagedAsync, &ExecEnv::standard());
        assert!(
            async_.inst.get(InstClass::Control) > sync.inst.get(InstClass::Control),
            "async must inflate control instructions"
        );
    }

    #[test]
    fn async_bypass_lowers_l1_traffic() {
        let k = StreamKernel::new(512, 256, 8, 64, 100.0);
        let e = exec();
        let sync = e.execute(&k, KernelStyle::StagedSync, &ExecEnv::standard());
        let async_ = e.execute(&k, KernelStyle::StagedAsync, &ExecEnv::standard());
        assert!(
            async_.l1.loads() < sync.l1.loads(),
            "cp.async loads must not appear in L1 counters"
        );
    }

    #[test]
    fn translation_penalty_slows_kernels() {
        let k = StreamKernel::new(512, 256, 8, 64, 100.0);
        let e = exec();
        let clean = e.execute(&k, KernelStyle::Direct, &ExecEnv::standard());
        let uvm = e.execute(&k, KernelStyle::Direct, &ExecEnv::new(1.3, 0.0));
        assert!(uvm.cycles > clean.cycles);
    }

    #[test]
    fn warm_l2_reduces_hbm_reads_and_time() {
        let k = StreamKernel::new(2048, 256, 8, 64, 100.0);
        let e = exec();
        let cold = e.execute(&k, KernelStyle::Direct, &ExecEnv::standard());
        let warm = e.execute(&k, KernelStyle::Direct, &ExecEnv::new(1.0, 0.6));
        assert!(warm.hbm_load_bytes < cold.hbm_load_bytes);
        assert!(warm.cycles < cold.cycles);
    }

    #[test]
    fn fewer_threads_expose_latency() {
        // Paper Fig 12: 64 blocks fixed, threads swept; fewer threads are
        // disproportionately slower.
        let per_block_lines = 2048;
        let k32 = StreamKernel::new(64, 32, 16, per_block_lines / 16, 100.0);
        let k256 = StreamKernel::new(64, 256, 16, per_block_lines / 16, 100.0);
        let e = exec();
        let r32 = e.execute(&k32, KernelStyle::StagedSync, &ExecEnv::standard());
        let r256 = e.execute(&k256, KernelStyle::StagedSync, &ExecEnv::standard());
        assert!(
            r32.cycles > 1.7 * r256.cycles,
            "1 warp ({}) should be much slower than 8 warps ({})",
            r32.cycles,
            r256.cycles
        );
    }

    #[test]
    fn async_insensitive_to_thread_count() {
        let k32 = StreamKernel::new(64, 32, 16, 128, 100.0);
        let k256 = StreamKernel::new(64, 256, 16, 128, 100.0);
        let e = exec();
        let r32 = e.execute(&k32, KernelStyle::StagedAsync, &ExecEnv::standard());
        let r256 = e.execute(&k256, KernelStyle::StagedAsync, &ExecEnv::standard());
        let sync32 = e.execute(&k32, KernelStyle::StagedSync, &ExecEnv::standard());
        let sync256 = e.execute(&k256, KernelStyle::StagedSync, &ExecEnv::standard());
        let async_ratio = r32.cycles / r256.cycles;
        let sync_ratio = sync32.cycles / sync256.cycles;
        assert!(
            async_ratio < sync_ratio,
            "cp.async hides latency without warps: {async_ratio} !< {sync_ratio}"
        );
    }

    #[test]
    fn extrapolation_scales_instructions() {
        let small = StreamKernel::new(6, 128, 4, 16, 50.0);
        let big = StreamKernel::new(600, 128, 4, 16, 50.0);
        let e = exec();
        let rs = e.execute(&small, KernelStyle::Direct, &ExecEnv::standard());
        let rb = e.execute(&big, KernelStyle::Direct, &ExecEnv::standard());
        let ratio = rb.inst.total() as f64 / rs.inst.total() as f64;
        assert!((ratio - 100.0).abs() < 1.0, "inst ratio {ratio}");
    }

    #[test]
    fn occupancy_reported() {
        let k = StreamKernel::new(512, 256, 4, 16, 50.0);
        let r = exec().execute(&k, KernelStyle::Direct, &ExecEnv::standard());
        assert!(r.theoretical_occupancy > 0.0 && r.theoretical_occupancy <= 1.0);
    }

    #[test]
    fn deterministic() {
        let k = StreamKernel::new(512, 256, 4, 16, 50.0);
        let e = exec();
        let a = e.execute(&k, KernelStyle::StagedAsync, &ExecEnv::standard());
        let b = e.execute(&k, KernelStyle::StagedAsync, &ExecEnv::standard());
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn zero_sample_rejected() {
        let _ = exec().with_sample_blocks(0);
    }

    #[test]
    #[should_panic(expected = "translation penalty")]
    fn bad_env_rejected() {
        let _ = ExecEnv::new(0.5, 0.0);
    }
}
