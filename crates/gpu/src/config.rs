//! GPU hardware configuration (Table 1's A100) plus cost-model knobs.

use hetsim_engine::time::ClockDomain;
use hetsim_mem::cache::CacheConfig;
use hetsim_mem::carveout::Carveout;
use hetsim_mem::hbm::Hbm;

/// A GPU device configuration.
///
/// Fields are public in the C-struct spirit: every one is an independent,
/// physically meaningful model parameter, and the ablation benches sweep
/// them directly. [`GpuConfig::a100`] is the calibrated preset used by all
/// paper experiments.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Streaming multiprocessor count.
    pub sm_count: u32,
    /// SM clock domain.
    pub clock: ClockDomain,
    /// Threads per warp.
    pub warp_size: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Maximum resident warps per SM.
    pub max_warps_per_sm: u32,
    /// L1/texture ↔ shared-memory partition.
    pub carveout: Carveout,
    /// L1 line size, bytes.
    pub l1_line: u64,
    /// L1 associativity.
    pub l1_ways: u32,
    /// Device-wide L2 cache geometry.
    pub l2: CacheConfig,
    /// Device global memory.
    pub hbm: Hbm,

    // ---- per-SM pipe throughputs (bytes or ops per cycle) ----
    /// L1/shared-memory port bandwidth per SM, bytes/cycle.
    pub l1_bytes_per_cycle: f64,
    /// L2 port bandwidth per SM, bytes/cycle.
    pub l2_bytes_per_cycle: f64,
    /// FP32 throughput per SM, ops/cycle.
    pub fp_per_cycle: f64,
    /// Integer throughput per SM, ops/cycle.
    pub int_per_cycle: f64,
    /// Control/branch throughput per SM, ops/cycle.
    pub control_per_cycle: f64,

    // ---- cost-model knobs (each ablated by a bench target) ----
    /// Warps needed per SM to hide global-memory latency on the direct
    /// (`ld.global`) path.
    pub warps_to_hide_latency: f64,
    /// Warps needed when `cp.async` prefetching hides latency instead.
    pub warps_to_hide_latency_async: f64,
    /// Register-file round-trip inflation on direct streaming loads
    /// (the pressure `cp.async` exists to remove).
    pub rf_pressure_factor: f64,
    /// Throughput efficiency of the `cp.async` bypass path relative to the
    /// plain L2/HBM path (slightly better: no RF, full-line requests).
    pub async_bypass_efficiency: f64,
    /// Control instructions added per thread per tile by the async
    /// pipeline (commit/wait/index arithmetic).
    pub async_ctrl_per_thread_tile: f64,
    /// Integer instructions added per thread per tile by the async
    /// pipeline (buffer indexing).
    pub async_int_per_thread_tile: f64,
    /// Cycles per `__syncthreads()` barrier.
    pub sync_barrier_cycles: f64,
    /// Fixed per-block launch/drain overhead, cycles.
    pub block_overhead_cycles: f64,
    /// How much of the shorter phase a synchronous staged kernel fails to
    /// overlap with the longer one (barriers lock fetch and compute into
    /// alternating phases): 0 = perfect overlap, 1 = full serialization.
    pub sync_serialization: f64,
    /// Achieved fraction of peak HBM bandwidth for direct (`ld.global`)
    /// load streams of a well-tuned kernel (enough ILP to keep requests in
    /// flight).
    pub hbm_eff_direct_load: f64,
    /// Achieved fraction of peak HBM bandwidth for the naive synchronous
    /// staging loop (`ld.global` → register → `st.shared` with barriers):
    /// the dependence chain caps per-warp MLP — the inefficiency
    /// `cp.async` was introduced to remove.
    pub hbm_eff_sync_load: f64,
    /// Achieved fraction of peak HBM bandwidth for `cp.async` load streams
    /// (full-line requests, no register round trip).
    pub hbm_eff_async_load: f64,
    /// Achieved fraction of peak HBM bandwidth for store streams.
    pub hbm_eff_store: f64,
}

impl GpuConfig {
    /// The paper's Nvidia A100 (Table 1), with cost-model knobs calibrated
    /// against its measured behaviours.
    pub fn a100() -> Self {
        let carveout = Carveout::paper_default();
        GpuConfig {
            sm_count: 108,
            clock: ClockDomain::from_mhz(1410),
            warp_size: 32,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            max_warps_per_sm: 64,
            carveout,
            l1_line: 128,
            l1_ways: 4,
            // 40 MB, 128B lines, 16-way.
            l2: CacheConfig::new(40 * (1 << 20), 128, 16),
            hbm: Hbm::a100_40gb(),
            l1_bytes_per_cycle: 128.0,
            l2_bytes_per_cycle: 96.0,
            fp_per_cycle: 64.0,
            int_per_cycle: 64.0,
            control_per_cycle: 16.0,
            warps_to_hide_latency: 16.0,
            warps_to_hide_latency_async: 2.0,
            rf_pressure_factor: 1.55,
            async_bypass_efficiency: 1.10,
            async_ctrl_per_thread_tile: 4.0,
            async_int_per_thread_tile: 3.0,
            sync_barrier_cycles: 24.0,
            block_overhead_cycles: 600.0,
            sync_serialization: 0.85,
            hbm_eff_direct_load: 0.75,
            hbm_eff_sync_load: 0.40,
            hbm_eff_async_load: 0.92,
            hbm_eff_store: 0.88,
        }
    }

    /// The L1/texture cache geometry implied by the current carveout.
    pub fn l1_config(&self) -> CacheConfig {
        let raw = self.carveout.l1_bytes();
        // Round down to a multiple of line * ways so the geometry is valid.
        let granule = self.l1_line * self.l1_ways as u64;
        let capacity = (raw / granule).max(1) * granule;
        CacheConfig::new(capacity, self.l1_line, self.l1_ways)
    }

    /// Returns a copy with a different carveout (Fig 13 sweeps this).
    pub fn with_carveout(&self, carveout: Carveout) -> Self {
        let mut c = self.clone();
        c.carveout = carveout;
        c
    }

    /// Device-wide HBM bandwidth in bytes per SM-clock cycle.
    pub fn hbm_bytes_per_cycle_device(&self) -> f64 {
        self.hbm.bandwidth().bytes_per_sec() / self.clock.hz()
    }

    /// Resident blocks per SM for a launch, limited by threads, the block
    /// cap, and shared memory.
    ///
    /// # Panics
    ///
    /// Panics if `threads_per_block` is zero.
    pub fn resident_blocks(&self, threads_per_block: u32, shared_per_block: u64) -> u32 {
        assert!(threads_per_block > 0, "threads_per_block must be positive");
        let by_threads = self.max_threads_per_sm / threads_per_block;
        let by_shared = self
            .carveout
            .shared_bytes()
            .checked_div(shared_per_block)
            .map_or(self.max_blocks_per_sm, |b| b as u32);
        by_threads.min(by_shared).min(self.max_blocks_per_sm).max(1)
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig::a100()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_matches_table1() {
        let g = GpuConfig::a100();
        assert_eq!(g.sm_count, 108);
        assert_eq!(g.clock, ClockDomain::from_mhz(1410));
        assert_eq!(g.hbm.capacity(), 40 * (1u64 << 30));
        assert_eq!(g.carveout.shared_bytes(), 32 * 1024);
    }

    #[test]
    fn l1_config_tracks_carveout() {
        let g = GpuConfig::a100();
        assert_eq!(g.l1_config().capacity, 160 * 1024);
        let big_shared = g.with_carveout(Carveout::with_shared_kib(128).unwrap());
        assert_eq!(big_shared.l1_config().capacity, 64 * 1024);
    }

    #[test]
    fn l1_config_rounds_to_valid_geometry() {
        let g = GpuConfig::a100().with_carveout(Carveout::with_shared_kib(164).unwrap());
        // 28 KB raw L1: must stay a multiple of line*ways.
        let cfg = g.l1_config();
        assert_eq!(cfg.capacity % (cfg.line * cfg.ways as u64), 0);
        assert!(cfg.capacity <= 28 * 1024);
    }

    #[test]
    fn resident_blocks_limits() {
        let g = GpuConfig::a100();
        assert_eq!(g.resident_blocks(256, 0), 8); // thread-limited
        assert_eq!(g.resident_blocks(32, 0), 32); // block-cap-limited
        assert_eq!(g.resident_blocks(256, 16 * 1024), 2); // smem-limited
        assert_eq!(g.resident_blocks(2048, 32 * 1024), 1); // floor of 1
    }

    #[test]
    fn hbm_cycle_bandwidth() {
        let g = GpuConfig::a100();
        let b = g.hbm_bytes_per_cycle_device();
        // 1555 GB/s over 1.41 GHz ~ 1100 B/cycle.
        assert!((1000.0..1200.0).contains(&b), "got {b}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_threads_rejected() {
        let _ = GpuConfig::a100().resident_blocks(0, 0);
    }
}
