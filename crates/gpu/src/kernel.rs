//! Kernel descriptions: launch geometry, transfer-mode styles, and the
//! [`KernelModel`] trait workloads implement.

use hetsim_mem::addr::MemAccess;
use hetsim_uvm::prefetch::Regularity;
use std::fmt;

/// CUDA-style launch configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Blocks in the grid.
    pub grid_blocks: u64,
    /// Threads per block.
    pub threads_per_block: u32,
    /// Static shared memory per block, bytes.
    pub shared_bytes_per_block: u64,
}

impl LaunchConfig {
    /// Creates a launch configuration.
    ///
    /// # Panics
    ///
    /// Panics if `grid_blocks` or `threads_per_block` is zero.
    pub fn new(grid_blocks: u64, threads_per_block: u32, shared_bytes_per_block: u64) -> Self {
        assert!(grid_blocks > 0, "grid must have at least one block");
        assert!(threads_per_block > 0, "block must have at least one thread");
        LaunchConfig {
            grid_blocks,
            threads_per_block,
            shared_bytes_per_block,
        }
    }

    /// Total threads in the grid.
    pub fn total_threads(&self) -> u64 {
        self.grid_blocks * self.threads_per_block as u64
    }

    /// Warps per block for a given warp size.
    pub fn warps_per_block(&self, warp_size: u32) -> u32 {
        self.threads_per_block.div_ceil(warp_size)
    }
}

impl fmt::Display for LaunchConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "<<<{}, {}, {}B>>>",
            self.grid_blocks, self.threads_per_block, self.shared_bytes_per_block
        )
    }
}

/// How a kernel moves data from global memory to its compute lanes — the
/// programming choice the paper studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelStyle {
    /// Plain `ld.global` through the L1 into registers.
    Direct,
    /// Shared-memory tiling with synchronous loads and `__syncthreads()`.
    StagedSync,
    /// `cp.async` double-buffered pipeline (Async Memcpy): fetches bypass
    /// L1 into shared memory and overlap with compute.
    StagedAsync,
}

impl KernelStyle {
    /// Whether this style stages tiles through shared memory.
    pub fn is_staged(self) -> bool {
        !matches!(self, KernelStyle::Direct)
    }
}

impl fmt::Display for KernelStyle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            KernelStyle::Direct => "direct",
            KernelStyle::StagedSync => "staged_sync",
            KernelStyle::StagedAsync => "staged_async",
        };
        f.write_str(s)
    }
}

/// Arithmetic budget of one tile, in dynamic instruction counts summed over
/// the block's threads.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TileOps {
    /// Floating-point instructions.
    pub fp: f64,
    /// Integer instructions (addressing, loop counters).
    pub int: f64,
    /// Control instructions (branches, predicates).
    pub control: f64,
}

impl TileOps {
    /// Creates a tile budget.
    pub fn new(fp: f64, int: f64, control: f64) -> Self {
        TileOps { fp, int, control }
    }

    /// Total instruction count.
    pub fn total(&self) -> f64 {
        self.fp + self.int + self.control
    }
}

/// A kernel expressed as a tile program.
///
/// One `KernelModel` describes what every block of a kernel launch does:
/// `tiles_per_block` tiles, each fetching a streaming slice of the inputs
/// ([`KernelModel::stream_accesses`]), touching some re-referenced data and
/// writing outputs ([`KernelModel::local_accesses`]), and executing
/// [`KernelModel::tile_ops`] arithmetic. The executor replays these streams
/// through the cache models under a chosen [`KernelStyle`].
///
/// Implementations must be deterministic: the same `(block, tile)` always
/// yields the same accesses. Randomized patterns derive their addresses
/// from hashes of `(block, tile, i)`, not from shared mutable state.
pub trait KernelModel {
    /// Kernel name (for reports).
    fn name(&self) -> &str;

    /// Launch geometry at the workload's configured input size.
    fn launch(&self) -> LaunchConfig;

    /// Tiles each block iterates over.
    fn tiles_per_block(&self) -> u64;

    /// Streaming (touch-once) global accesses of one tile, appended to
    /// `out`. Addresses are line-granular transactions, not per-thread
    /// accesses.
    fn stream_accesses(&self, block: u64, tile: u64, out: &mut Vec<MemAccess>);

    /// Streaming accesses when the kernel is forced into a staged
    /// (shared-memory tiled) form. Defaults to the plain stream; kernels
    /// whose natural access pattern does not tile cleanly (stencils) emit
    /// extra halo lines here — the overfetch that makes Async Memcpy *hurt*
    /// workloads like 2DCONV in the paper.
    fn staged_stream_accesses(&self, block: u64, tile: u64, out: &mut Vec<MemAccess>) {
        self.stream_accesses(block, tile, out);
    }

    /// Re-referenced global accesses and output stores of one tile.
    fn local_accesses(&self, block: u64, tile: u64, out: &mut Vec<MemAccess>);

    /// Arithmetic budget of one tile.
    fn tile_ops(&self) -> TileOps;

    /// Global-memory access regularity (drives UVM prefetch coverage).
    fn regularity(&self) -> Regularity;

    /// The style of the hand-written standard (non-async) version of this
    /// kernel. Defaults to [`KernelStyle::Direct`].
    fn standard_style(&self) -> KernelStyle {
        KernelStyle::Direct
    }

    /// How many times the application launches this kernel (iterative
    /// solvers, diagonal sweeps, training epochs). The runtime multiplies
    /// kernel time and instruction counts; UVM faults only strike the
    /// first launch, since the data is resident afterwards.
    fn invocations(&self) -> u64 {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn launch_accessors() {
        let l = LaunchConfig::new(4096, 256, 32 * 1024);
        assert_eq!(l.total_threads(), 4096 * 256);
        assert_eq!(l.warps_per_block(32), 8);
        assert_eq!(l.to_string(), "<<<4096, 256, 32768B>>>");
    }

    #[test]
    fn warps_round_up() {
        let l = LaunchConfig::new(1, 33, 0);
        assert_eq!(l.warps_per_block(32), 2);
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn zero_grid_rejected() {
        let _ = LaunchConfig::new(0, 32, 0);
    }

    #[test]
    fn style_properties() {
        assert!(!KernelStyle::Direct.is_staged());
        assert!(KernelStyle::StagedSync.is_staged());
        assert!(KernelStyle::StagedAsync.is_staged());
        assert_eq!(KernelStyle::StagedAsync.to_string(), "staged_async");
    }

    #[test]
    fn tile_ops_total() {
        let t = TileOps::new(100.0, 50.0, 10.0);
        assert_eq!(t.total(), 160.0);
        assert_eq!(TileOps::default().total(), 0.0);
    }
}
