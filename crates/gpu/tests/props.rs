//! Randomized invariant tests for the kernel executor, driven by the
//! engine's deterministic [`SimRng`] (no external test dependencies).

use hetsim_engine::rng::SimRng;
use hetsim_gpu::exec::{ExecEnv, KernelExecutor};
use hetsim_gpu::kernel::{KernelModel, KernelStyle, LaunchConfig, TileOps};
use hetsim_gpu::GpuConfig;
use hetsim_mem::addr::MemAccess;
use hetsim_uvm::prefetch::Regularity;

const CASES: u64 = 24;

/// A parameterized synthetic kernel for randomized tests.
#[derive(Debug, Clone)]
struct PropKernel {
    blocks: u64,
    threads: u32,
    tiles: u64,
    lines: u64,
    fp: f64,
}

impl PropKernel {
    fn arbitrary(rng: &mut SimRng) -> Self {
        PropKernel {
            blocks: rng.range(1, 2048),
            threads: rng.range(1, 1024) as u32,
            tiles: rng.range(1, 32),
            lines: rng.range(1, 64),
            fp: rng.next_f64() * 1e5,
        }
    }
}

impl KernelModel for PropKernel {
    fn name(&self) -> &str {
        "prop_kernel"
    }
    fn launch(&self) -> LaunchConfig {
        LaunchConfig::new(self.blocks, self.threads, 32 * 1024)
    }
    fn tiles_per_block(&self) -> u64 {
        self.tiles
    }
    fn stream_accesses(&self, block: u64, tile: u64, out: &mut Vec<MemAccess>) {
        let base = (block * self.tiles + tile) * self.lines * 128;
        for i in 0..self.lines {
            out.push(MemAccess::global_load(base + i * 128));
        }
    }
    fn local_accesses(&self, block: u64, tile: u64, out: &mut Vec<MemAccess>) {
        let base = (1u64 << 41) + (block * self.tiles + tile) * self.lines * 128;
        for i in 0..self.lines / 2 {
            out.push(MemAccess::global_store(base + i * 128));
        }
    }
    fn tile_ops(&self) -> TileOps {
        TileOps::new(self.fp, self.fp / 2.0, self.fp / 8.0)
    }
    fn regularity(&self) -> Regularity {
        Regularity::Regular
    }
}

const STYLES: [KernelStyle; 3] = [
    KernelStyle::Direct,
    KernelStyle::StagedSync,
    KernelStyle::StagedAsync,
];

fn pick_style(rng: &mut SimRng) -> KernelStyle {
    STYLES[rng.below(3) as usize]
}

/// Kernel time is always positive and finite for any geometry.
#[test]
fn kernel_time_positive() {
    let mut rng = SimRng::seed_from_parts(&["props", "kernel_time_positive"], 0);
    let exec = KernelExecutor::new(GpuConfig::a100());
    for _ in 0..CASES {
        let k = PropKernel::arbitrary(&mut rng);
        let style = pick_style(&mut rng);
        let r = exec.execute(&k, style, &ExecEnv::standard());
        assert!(r.cycles.is_finite());
        assert!(r.cycles > 0.0);
        assert!(r.theoretical_occupancy > 0.0 && r.theoretical_occupancy <= 1.0);
    }
}

/// A translation penalty never makes a kernel faster.
#[test]
fn translation_penalty_monotone() {
    let mut rng = SimRng::seed_from_parts(&["props", "translation_penalty"], 0);
    let exec = KernelExecutor::new(GpuConfig::a100());
    for _ in 0..CASES {
        let k = PropKernel::arbitrary(&mut rng);
        let style = pick_style(&mut rng);
        let pen = 1.0 + rng.next_f64() * 2.0;
        let base = exec.execute(&k, style, &ExecEnv::standard());
        let slow = exec.execute(&k, style, &ExecEnv::new(pen, 0.0));
        assert!(slow.cycles >= base.cycles * 0.999);
    }
}

/// A warm L2 never makes a kernel slower, and never increases HBM traffic.
#[test]
fn warm_l2_monotone() {
    let mut rng = SimRng::seed_from_parts(&["props", "warm_l2_monotone"], 0);
    let exec = KernelExecutor::new(GpuConfig::a100());
    for _ in 0..CASES {
        let k = PropKernel::arbitrary(&mut rng);
        let style = pick_style(&mut rng);
        let warm = rng.next_f64();
        let cold = exec.execute(&k, style, &ExecEnv::standard());
        let warmed = exec.execute(&k, style, &ExecEnv::new(1.0, warm));
        assert!(warmed.cycles <= cold.cycles * 1.001);
        assert!(warmed.hbm_load_bytes <= cold.hbm_load_bytes);
    }
}

/// Doubling the grid never shrinks total instruction counts.
#[test]
fn grid_scaling_monotone() {
    let mut rng = SimRng::seed_from_parts(&["props", "grid_scaling_monotone"], 0);
    let exec = KernelExecutor::new(GpuConfig::a100());
    for _ in 0..CASES {
        let k = PropKernel::arbitrary(&mut rng);
        let style = pick_style(&mut rng);
        let small = exec.execute(&k, style, &ExecEnv::standard());
        let mut big = k.clone();
        big.blocks *= 2;
        let doubled = exec.execute(&big, style, &ExecEnv::standard());
        assert!(doubled.inst.total() >= small.inst.total());
        assert!(doubled.cycles >= small.cycles * 0.999);
    }
}

/// Async always inflates the control-instruction count over sync staging
/// for the same kernel.
#[test]
fn async_control_overhead_holds() {
    use hetsim_counters::InstClass;
    let mut rng = SimRng::seed_from_parts(&["props", "async_control_overhead"], 0);
    let exec = KernelExecutor::new(GpuConfig::a100());
    for _ in 0..CASES {
        let k = PropKernel::arbitrary(&mut rng);
        let sync = exec.execute(&k, KernelStyle::StagedSync, &ExecEnv::standard());
        let asy = exec.execute(&k, KernelStyle::StagedAsync, &ExecEnv::standard());
        assert!(asy.inst.get(InstClass::Control) > sync.inst.get(InstClass::Control));
    }
}
