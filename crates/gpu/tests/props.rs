//! Property-based tests for the kernel executor.

use hetsim_gpu::exec::{ExecEnv, KernelExecutor};
use hetsim_gpu::kernel::{KernelModel, KernelStyle, LaunchConfig, TileOps};
use hetsim_gpu::GpuConfig;
use hetsim_mem::addr::MemAccess;
use hetsim_uvm::prefetch::Regularity;
use proptest::prelude::*;

/// A parameterized synthetic kernel for property tests.
#[derive(Debug, Clone)]
struct PropKernel {
    blocks: u64,
    threads: u32,
    tiles: u64,
    lines: u64,
    fp: f64,
}

impl KernelModel for PropKernel {
    fn name(&self) -> &str {
        "prop_kernel"
    }
    fn launch(&self) -> LaunchConfig {
        LaunchConfig::new(self.blocks, self.threads, 32 * 1024)
    }
    fn tiles_per_block(&self) -> u64 {
        self.tiles
    }
    fn stream_accesses(&self, block: u64, tile: u64, out: &mut Vec<MemAccess>) {
        let base = (block * self.tiles + tile) * self.lines * 128;
        for i in 0..self.lines {
            out.push(MemAccess::global_load(base + i * 128));
        }
    }
    fn local_accesses(&self, block: u64, tile: u64, out: &mut Vec<MemAccess>) {
        let base = (1u64 << 41) + (block * self.tiles + tile) * self.lines * 128;
        for i in 0..self.lines / 2 {
            out.push(MemAccess::global_store(base + i * 128));
        }
    }
    fn tile_ops(&self) -> TileOps {
        TileOps::new(self.fp, self.fp / 2.0, self.fp / 8.0)
    }
    fn regularity(&self) -> Regularity {
        Regularity::Regular
    }
}

fn kernel_strategy() -> impl Strategy<Value = PropKernel> {
    (1u64..2048, 1u32..1024, 1u64..32, 1u64..64, 0.0f64..1e5).prop_map(
        |(blocks, threads, tiles, lines, fp)| PropKernel {
            blocks,
            threads,
            tiles,
            lines,
            fp,
        },
    )
}

fn styles() -> impl Strategy<Value = KernelStyle> {
    prop::sample::select(vec![
        KernelStyle::Direct,
        KernelStyle::StagedSync,
        KernelStyle::StagedAsync,
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Kernel time is always positive and finite for any geometry.
    #[test]
    fn kernel_time_positive(k in kernel_strategy(), style in styles()) {
        let exec = KernelExecutor::new(GpuConfig::a100());
        let r = exec.execute(&k, style, &ExecEnv::standard());
        prop_assert!(r.cycles.is_finite());
        prop_assert!(r.cycles > 0.0);
        prop_assert!(r.theoretical_occupancy > 0.0 && r.theoretical_occupancy <= 1.0);
    }

    /// A translation penalty never makes a kernel faster.
    #[test]
    fn translation_penalty_monotone(k in kernel_strategy(), style in styles(), pen in 1.0f64..3.0) {
        let exec = KernelExecutor::new(GpuConfig::a100());
        let base = exec.execute(&k, style, &ExecEnv::standard());
        let slow = exec.execute(&k, style, &ExecEnv::new(pen, 0.0));
        prop_assert!(slow.cycles >= base.cycles * 0.999);
    }

    /// A warm L2 never makes a kernel slower, and never increases HBM
    /// traffic.
    #[test]
    fn warm_l2_monotone(k in kernel_strategy(), style in styles(), warm in 0.0f64..=1.0) {
        let exec = KernelExecutor::new(GpuConfig::a100());
        let cold = exec.execute(&k, style, &ExecEnv::standard());
        let warmed = exec.execute(&k, style, &ExecEnv::new(1.0, warm));
        prop_assert!(warmed.cycles <= cold.cycles * 1.001);
        prop_assert!(warmed.hbm_load_bytes <= cold.hbm_load_bytes);
    }

    /// Doubling the grid never shrinks total instruction counts.
    #[test]
    fn grid_scaling_monotone(k in kernel_strategy(), style in styles()) {
        let exec = KernelExecutor::new(GpuConfig::a100());
        let small = exec.execute(&k, style, &ExecEnv::standard());
        let mut big = k.clone();
        big.blocks *= 2;
        let doubled = exec.execute(&big, style, &ExecEnv::standard());
        prop_assert!(doubled.inst.total() >= small.inst.total());
        prop_assert!(doubled.cycles >= small.cycles * 0.999);
    }

    /// Async always inflates the control-instruction count over sync
    /// staging for the same kernel.
    #[test]
    fn async_control_overhead_holds(k in kernel_strategy()) {
        use hetsim_counters::InstClass;
        let exec = KernelExecutor::new(GpuConfig::a100());
        let sync = exec.execute(&k, KernelStyle::StagedSync, &ExecEnv::standard());
        let asy = exec.execute(&k, KernelStyle::StagedAsync, &ExecEnv::standard());
        prop_assert!(asy.inst.get(InstClass::Control) > sync.inst.get(InstClass::Control));
    }
}
