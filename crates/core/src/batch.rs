//! The §6.2 inter-job data-transfer model (the paper's Fig 14),
//! implemented.
//!
//! The paper observes that once UVM + Async Memcpy shrink transfer time,
//! allocation (`cudaMallocManaged` + `cudaFree`) becomes the bottleneck —
//! ~38% of the total — and proposes overlapping job *i+1*'s CPU-side
//! allocation with job *i*'s GPU work (the KaaS batch-processing setting).
//! [`InterJobPipeline`] evaluates that proposal: it schedules a batch of
//! jobs with and without the overlap on the discrete-event engine and
//! reports the throughput gain — the ">30% additional improvement" the
//! paper estimates.

use hetsim_counters::report::Table;
use hetsim_engine::time::Nanos;
use hetsim_runtime::{RunReport, Timeline};
use hetsim_trace::{Category, Dim, Trace, TraceBuilder, TraceConfig};

/// One job's stage costs in the batch pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobStages {
    /// CPU-side stage: allocation + free.
    pub cpu: Nanos,
    /// GPU-side stage: data transfer + kernel.
    pub gpu: Nanos,
}

impl JobStages {
    /// Derives the stages from a measured run report (the fixed system
    /// overhead is per-process, not per-job, and is excluded).
    pub fn from_report(report: &RunReport) -> Self {
        JobStages {
            cpu: report.alloc,
            gpu: report.memcpy + report.kernel,
        }
    }

    /// Sequential cost of the job.
    pub fn total(&self) -> Nanos {
        self.cpu + self.gpu
    }
}

/// The batch scheduler comparing the current model against the proposed
/// inter-job overlap.
#[derive(Debug, Clone)]
pub struct InterJobPipeline {
    jobs: Vec<JobStages>,
}

/// The outcome of scheduling one batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineEstimate {
    /// Total time without inter-job overlap (today's model: jobs strictly
    /// serialized).
    pub sequential: Nanos,
    /// Total time with job *i+1*'s CPU stage overlapped with job *i*'s GPU
    /// stage.
    pub pipelined: Nanos,
}

impl PipelineEstimate {
    /// Fractional improvement, `1 - pipelined / sequential`.
    pub fn improvement(&self) -> f64 {
        let s = self.sequential.as_nanos() as f64;
        if s == 0.0 {
            0.0
        } else {
            1.0 - self.pipelined.as_nanos() as f64 / s
        }
    }
}

impl InterJobPipeline {
    /// A batch of `count` identical jobs with the given stage costs.
    pub fn homogeneous(stages: JobStages, count: u32) -> Self {
        InterJobPipeline {
            jobs: vec![stages; count as usize],
        }
    }

    /// A batch of heterogeneous jobs.
    ///
    /// # Panics
    ///
    /// Panics if `jobs` is empty.
    pub fn new(jobs: Vec<JobStages>) -> Self {
        assert!(!jobs.is_empty(), "batch needs at least one job");
        InterJobPipeline { jobs }
    }

    /// The jobs.
    pub fn jobs(&self) -> &[JobStages] {
        &self.jobs
    }

    /// Records both schedules of the paper's Fig 14 as traces:
    /// `(without_overlap, with_overlap)`, each with a `cpu` and a `gpu`
    /// track carrying `alloc[i]` / `kernel[i]` spans.
    ///
    /// These traces are the single source of truth for the batch model —
    /// [`InterJobPipeline::estimate`] reads their horizons and
    /// [`InterJobPipeline::timelines`] renders them, so the summary numbers
    /// and the Gantt pictures can never drift apart.
    pub fn traces(&self) -> (Trace, Trace) {
        let cap = (2 * self.jobs.len()).max(1);

        // Today's model: jobs strictly serialized.
        let mut serial = TraceBuilder::new(TraceConfig::default().with_capacity(cap));
        let cpu = serial.track("cpu");
        let gpu = serial.track("gpu");
        let mut clock = 0u64;
        for (i, j) in self.jobs.iter().enumerate() {
            serial.set_label(Dim::Job, &i.to_string());
            serial.span_at(
                cpu,
                Category::Alloc,
                format!("alloc[{i}]"),
                clock,
                j.cpu.as_nanos(),
            );
            clock += j.cpu.as_nanos();
            serial.span_at(
                gpu,
                Category::Kernel,
                format!("kernel[{i}]"),
                clock,
                j.gpu.as_nanos(),
            );
            clock += j.gpu.as_nanos();
        }

        // The proposed two-stage pipeline: job *i*'s GPU stage may start
        // once its CPU stage is done *and* job *i-1*'s GPU stage has
        // drained; CPU stages run ahead on the otherwise-idle host.
        let mut piped = TraceBuilder::new(TraceConfig::default().with_capacity(cap));
        let cpu = piped.track("cpu");
        let gpu = piped.track("gpu");
        let mut cpu_free = 0u64; // when the host is next available
        let mut gpu_free = 0u64; // when the device is next available
        for (i, j) in self.jobs.iter().enumerate() {
            piped.set_label(Dim::Job, &i.to_string());
            piped.span_at(
                cpu,
                Category::Alloc,
                format!("alloc[{i}]"),
                cpu_free,
                j.cpu.as_nanos(),
            );
            let cpu_done = cpu_free + j.cpu.as_nanos();
            cpu_free = cpu_done;
            let gpu_start = cpu_done.max(gpu_free);
            piped.span_at(
                gpu,
                Category::Kernel,
                format!("kernel[{i}]"),
                gpu_start,
                j.gpu.as_nanos(),
            );
            gpu_free = gpu_start + j.gpu.as_nanos();
        }

        (serial.finish(), piped.finish())
    }

    /// Schedules the batch both ways, reading both totals off the recorded
    /// schedule traces.
    pub fn estimate(&self) -> PipelineEstimate {
        let (serial, piped) = self.traces();
        PipelineEstimate {
            sequential: Nanos::from_nanos(serial.horizon()),
            pipelined: Nanos::from_nanos(piped.horizon()),
        }
    }

    /// Renders the two schedules of the paper's Fig 14 as timelines:
    /// `(without_overlap, with_overlap)`, each with a `cpu` and a `gpu`
    /// lane — Gantt views over [`InterJobPipeline::traces`].
    pub fn timelines(&self) -> (Timeline, Timeline) {
        let (serial, piped) = self.traces();
        (Timeline::from_trace(&serial), Timeline::from_trace(&piped))
    }

    /// The estimates of every prefix batch (`jobs[..1]`, `jobs[..2]`, …)
    /// computed in one incremental pass over the job list.
    ///
    /// Both schedules extend monotonically: the sequential prefix total is
    /// a running sum, and the pipelined prefix total is the device's
    /// availability time `gpu_free` after job *n* — the kernel recurrence
    /// of [`InterJobPipeline::traces`] gives `gpu_free ≥ cpu_free` at
    /// every step (each GPU stage starts no earlier than its CPU stage
    /// finished), so `gpu_free` *is* the prefix schedule's horizon.
    /// Re-scheduling each prefix from scratch would be O(n²) in batch
    /// size; this pass is O(n) and produces identical numbers (pinned by
    /// a test against [`InterJobPipeline::estimate`]).
    pub fn prefix_estimates(&self) -> Vec<PipelineEstimate> {
        let mut out = Vec::with_capacity(self.jobs.len());
        let mut sequential = 0u64;
        let mut cpu_free = 0u64;
        let mut gpu_free = 0u64;
        for j in &self.jobs {
            sequential += j.total().as_nanos();
            cpu_free += j.cpu.as_nanos();
            gpu_free = cpu_free.max(gpu_free) + j.gpu.as_nanos();
            out.push(PipelineEstimate {
                sequential: Nanos::from_nanos(sequential),
                pipelined: Nanos::from_nanos(gpu_free),
            });
        }
        out
    }

    /// Renders the estimate for a range of batch sizes (prefixes of the
    /// job list).
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(vec!["jobs", "sequential_ns", "pipelined_ns", "improvement"]);
        for (n, e) in self.prefix_estimates().iter().enumerate() {
            t.row(vec![
                (n + 1).to_string(),
                e.sequential.as_nanos().to_string(),
                e.pipelined.as_nanos().to_string(),
                format!("{:.2}%", e.improvement() * 100.0),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(cpu_ms: u64, gpu_ms: u64) -> JobStages {
        JobStages {
            cpu: Nanos::from_millis(cpu_ms),
            gpu: Nanos::from_millis(gpu_ms),
        }
    }

    #[test]
    fn single_job_cannot_overlap() {
        let e = InterJobPipeline::homogeneous(job(40, 60), 1).estimate();
        assert_eq!(e.sequential, e.pipelined);
        assert_eq!(e.improvement(), 0.0);
    }

    #[test]
    fn long_batch_converges_to_bottleneck_stage() {
        // CPU 40ms, GPU 60ms: pipelined steady state is GPU-bound, so per
        // job the cost approaches 60ms instead of 100ms -> 40% improvement.
        let e = InterJobPipeline::homogeneous(job(40, 60), 100).estimate();
        let per_job = e.pipelined.as_nanos() as f64 / 100.0;
        assert!((per_job / 60e6 - 1.0).abs() < 0.01, "per job {per_job}");
        assert!(e.improvement() > 0.35, "{}", e.improvement());
    }

    #[test]
    fn cpu_bound_batches_are_cpu_limited() {
        let e = InterJobPipeline::homogeneous(job(80, 20), 50).estimate();
        let per_job = e.pipelined.as_nanos() as f64 / 50.0;
        assert!(per_job >= 80e6 * 0.99);
    }

    #[test]
    fn pipelined_never_slower_never_better_than_bound() {
        let jobs = vec![job(10, 90), job(50, 50), job(90, 10), job(30, 30)];
        let e = InterJobPipeline::new(jobs.clone()).estimate();
        assert!(e.pipelined <= e.sequential);
        // Lower bound: max of total CPU and total GPU work.
        let cpu: Nanos = jobs.iter().map(|j| j.cpu).sum();
        let gpu: Nanos = jobs.iter().map(|j| j.gpu).sum();
        assert!(e.pipelined >= cpu.max(gpu));
    }

    #[test]
    fn paper_shape_thirty_percent_headroom() {
        // §6: allocation ~37.66% and GPU work ~62% of the post-UVM+async
        // breakdown; overlapping them should buy >30%.
        let e = InterJobPipeline::homogeneous(job(377, 623), 64).estimate();
        assert!(
            e.improvement() > 0.3,
            "improvement {:.3} should exceed 30%",
            e.improvement()
        );
    }

    #[test]
    fn timelines_match_estimates() {
        let p = InterJobPipeline::homogeneous(job(40, 60), 4);
        let (serial, piped) = p.timelines();
        let est = p.estimate();
        assert_eq!(
            serial.horizon().as_nanos(),
            est.sequential.as_nanos(),
            "serial timeline horizon equals the sequential estimate"
        );
        assert_eq!(
            piped.horizon().as_nanos(),
            est.pipelined.as_nanos(),
            "pipelined timeline horizon equals the pipelined estimate"
        );
        // Two lanes, four jobs each.
        assert_eq!(serial.len(), 8);
        assert!(piped.render(60).contains("cpu"));
    }

    fn span(trace: &Trace, name: &str) -> (u64, u64) {
        let e = trace
            .events()
            .iter()
            .find(|e| e.name == name)
            .unwrap_or_else(|| panic!("no span named {name}"));
        (e.ts, e.end())
    }

    #[test]
    fn fig14_trace_shows_interjob_overlap() {
        let p = InterJobPipeline::homogeneous(job(40, 60), 3);
        let (serial, piped) = p.traces();
        // Without overlap, job 1's allocation waits for job 0's kernel.
        let (_, k0_end) = span(&serial, "kernel[0]");
        let (a1_start, _) = span(&serial, "alloc[1]");
        assert_eq!(a1_start, k0_end, "serial: next alloc waits for the kernel");
        // With the proposed pipeline, it runs during job 0's kernel.
        let (k0s, k0e) = span(&piped, "kernel[0]");
        let (a1s, a1e) = span(&piped, "alloc[1]");
        assert!(a1s < k0e && a1e > k0s, "piped: alloc[1] overlaps kernel[0]");
        // The trace carries the accounting categories, so exported batch
        // traces participate in category totals like everything else.
        assert_eq!(
            piped.category_total(Category::Kernel),
            Nanos::from_millis(3 * 60).as_nanos()
        );
        assert_eq!(
            piped.category_total(Category::Alloc),
            Nanos::from_millis(3 * 40).as_nanos()
        );
    }

    #[test]
    fn table_rows_per_prefix() {
        let p = InterJobPipeline::homogeneous(job(10, 10), 4);
        assert_eq!(p.to_table().len(), 4);
        assert_eq!(p.jobs().len(), 4);
    }

    #[test]
    fn incremental_prefixes_match_scratch_schedules() {
        // Heterogeneous stage mixes exercise both the CPU-bound and the
        // GPU-bound branches of the pipelined recurrence.
        let jobs = vec![
            job(10, 90),
            job(50, 50),
            job(90, 10),
            job(30, 30),
            job(1, 200),
            job(200, 1),
        ];
        let p = InterJobPipeline::new(jobs.clone());
        let incremental = p.prefix_estimates();
        assert_eq!(incremental.len(), jobs.len());
        for n in 1..=jobs.len() {
            let scratch = InterJobPipeline::new(jobs[..n].to_vec()).estimate();
            assert_eq!(incremental[n - 1], scratch, "prefix {n}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one job")]
    fn empty_batch_rejected() {
        let _ = InterJobPipeline::new(vec![]);
    }
}
