//! The multi-run measurement harness.
//!
//! The paper runs every configuration 30 times and reports means,
//! distributions, and std/mean stability (§3.3). [`Experiment`] reproduces
//! that methodology: one deterministic base simulation per
//! `(workload, mode)` plus per-run measurement noise, so a 30-run
//! distribution costs one cache simulation, not thirty.

use crate::cache::{self, CacheKey, DiskCache};
use crate::memo::{MemoStats, ShardedMemo};
use crate::pool;
use hetsim_counters::report::Table;
use hetsim_engine::stats::Summary;
use hetsim_engine::time::Nanos;
use hetsim_runtime::report::Component;
use hetsim_runtime::{
    ChaosRunReport, Device, FaultPlan, GpuProgram, RecoveryPolicy, RunReport, Runner, SimError,
    TransferMode,
};
use hetsim_trace::{Dim, HostProfiler, Trace, TraceBuilder, TraceConfig, TraceSink};
use std::sync::Arc;

/// Memoized base runs, keyed on the program's structural fingerprint plus
/// the transfer mode. The device is fixed per `Experiment` (and
/// [`Experiment::with_device`] swaps in a fresh memo), so it needs no
/// spot in the key. Sharded and single-flight: parallel grid workers that
/// race on one cell block on its in-flight computation instead of
/// duplicating the simulation, and workers on different cells never share
/// a lock.
type BaseMemo = Arc<ShardedMemo<(String, TransferMode), RunReport>>;

/// A configured experiment: a device plus a run count.
#[derive(Debug, Clone)]
pub struct Experiment {
    runner: Runner,
    runs: u64,
    trace: TraceConfig,
    memo: BaseMemo,
    disk: Option<Arc<DiskCache>>,
    device_hash: u64,
}

impl Experiment {
    /// An experiment on the paper's platform with its 30-run methodology.
    pub fn new() -> Self {
        Experiment {
            runner: Runner::new(Device::a100_epyc()),
            runs: 30,
            trace: TraceConfig::default(),
            memo: BaseMemo::default(),
            disk: None,
            device_hash: 0,
        }
    }

    /// Overrides the run count (tests use fewer runs).
    ///
    /// # Panics
    ///
    /// Panics if `runs` is zero.
    pub fn with_runs(mut self, runs: u64) -> Self {
        assert!(runs > 0, "experiment needs at least one run");
        self.runs = runs;
        self
    }

    /// Uses a custom device (sensitivity studies re-point the carveout).
    /// Invalidates the in-memory base-run memo: cached reports belong to
    /// the old device. Disk-cache entries stay valid — they are keyed on
    /// the device fingerprint, which is recomputed here.
    pub fn with_device(mut self, device: Device) -> Self {
        self.runner = Runner::new(device);
        self.memo = BaseMemo::default();
        if self.disk.is_some() {
            self.device_hash = cache::device_fingerprint(self.runner.device());
        }
        self
    }

    /// Attaches an on-disk result cache (see [`crate::cache`]): base runs
    /// missing from the memo are looked up on disk before simulating, and
    /// freshly simulated cells are written back, so repeated sweeps only
    /// compute changed cells.
    pub fn with_cache(mut self, disk: Arc<DiskCache>) -> Self {
        self.device_hash = cache::device_fingerprint(self.runner.device());
        self.disk = Some(disk);
        self
    }

    /// The attached disk cache, if any.
    pub fn disk_cache(&self) -> Option<&Arc<DiskCache>> {
        self.disk.as_ref()
    }

    /// Counters of the in-memory base-run memo. `computes` counts actual
    /// simulations (or disk-cache loads) — with single-flight it equals
    /// `entries` regardless of how many workers raced on the same cell.
    pub fn memo_stats(&self) -> MemoStats {
        self.memo.stats()
    }

    /// Overrides the trace configuration used by
    /// [`Experiment::traced_run`] and [`Experiment::traced_modes`].
    pub fn with_trace(mut self, config: TraceConfig) -> Self {
        self.trace = config;
        self
    }

    /// Arms fault injection for [`Experiment::try_run`]. The infallible
    /// measurement paths ([`Experiment::base_run`], distributions, figure
    /// grids) stay chaos-free, so fault-free baselines and a chaos run can
    /// share one experiment — and one base-run memo, which this therefore
    /// does *not* invalidate.
    pub fn with_chaos(mut self, plan: FaultPlan, policy: RecoveryPolicy) -> Self {
        self.runner = self.runner.clone().with_chaos(plan, policy);
        self
    }

    /// The fallible, chaos-aware run: injects faults from the plan armed
    /// via [`Experiment::with_chaos`] (an inert plan when unarmed), pays
    /// recovery costs in sim time, and degrades the transfer mode under
    /// sustained thrashing instead of panicking.
    ///
    /// Never memoized: each call replays injection from the plan's seed,
    /// which is the property the determinism gates assert on.
    ///
    /// # Errors
    ///
    /// See [`Runner::try_run_base`] — invalid plans and programs are
    /// rejected up front, and faults that outlast the recovery policy
    /// surface as typed [`SimError`]s.
    pub fn try_run(
        &self,
        program: &dyn GpuProgram,
        mode: TransferMode,
    ) -> Result<ChaosRunReport, SimError> {
        self.runner.try_run_base(program, mode)
    }

    /// The trace configuration.
    pub fn trace_config(&self) -> TraceConfig {
        self.trace
    }

    /// The underlying runner.
    pub fn runner(&self) -> &Runner {
        &self.runner
    }

    /// Run count.
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// The deterministic base simulation of `(program, mode)`, memoized:
    /// figure grids that revisit a configuration (headline + sensitivity
    /// + irregular tables) pay for each simulation once per `Experiment`.
    ///
    /// Tracing bypasses the memo — a traced run's value *is* its side
    /// effects on the active session, so it must actually execute.
    pub fn base_run(&self, program: &dyn GpuProgram, mode: TransferMode) -> RunReport {
        if hetsim_trace::session::enabled() {
            return self.runner.run_base(program, mode);
        }
        let memo_key = program.memo_key();
        self.memo
            .get_or_compute((memo_key.clone(), mode), || match &self.disk {
                Some(disk) => {
                    let key = CacheKey::new(&memo_key, mode, self.device_hash);
                    if let Some(hit) = disk.load(&key) {
                        return hit;
                    }
                    let report = self.runner.run_base(program, mode);
                    disk.store(&key, &report);
                    report
                }
                None => self.runner.run_base(program, mode),
            })
    }

    /// The full run distribution for one `(workload, mode)` pair.
    pub fn distribution(&self, program: &dyn GpuProgram, mode: TransferMode) -> Vec<RunReport> {
        let base = self.base_run(program, mode);
        (0..self.runs)
            .map(|i| self.runner.apply_noise(&base, program, mode, i))
            .collect()
    }

    /// Mean breakdown over the distribution.
    pub fn mean(&self, program: &dyn GpuProgram, mode: TransferMode) -> MeanReport {
        MeanReport::from_distribution(&self.distribution(program, mode))
    }

    /// Means for all five modes, for normalized side-by-side comparison
    /// (the format of the paper's Figs 7, 8, 11–13). The five base
    /// simulations are independent, so they fan out over the
    /// [`pool`] workers; results come back in mode order
    /// regardless of scheduling.
    pub fn compare_modes(&self, program: &dyn GpuProgram) -> ModeComparison {
        let means: Vec<MeanReport> = pool::run(TransferMode::ALL.len(), |i| {
            self.mean(program, TransferMode::ALL[i])
        });
        ModeComparison {
            workload: program.name().to_string(),
            means: means.try_into().expect("one mean per mode"),
        }
    }

    /// Runs the deterministic base simulation of `(program, mode)` inside
    /// a fresh thread-local trace session and returns the report together
    /// with the recording.
    ///
    /// The *noise-free* base run is what gets traced (not the noised
    /// distribution), so the recording is reproducible across invocations
    /// and its phase spans sum exactly to the report's components. Host
    /// self-profiling spans are added only when the configuration opted
    /// in via [`TraceConfig::with_self_profile`].
    pub fn traced_run(&self, program: &dyn GpuProgram, mode: TransferMode) -> (RunReport, Trace) {
        hetsim_trace::session::start(self.trace);
        self.finish_traced_run(program, mode)
    }

    /// Like [`Experiment::traced_run`], but attaches `sink` to the
    /// session so completed events drain to it *during* the run: memory
    /// stays bounded by the configured capacity and nothing is dropped
    /// even when the recording outgrows the ring many times over.
    pub fn traced_run_streaming(
        &self,
        program: &dyn GpuProgram,
        mode: TransferMode,
        sink: Box<dyn TraceSink>,
    ) -> (RunReport, Trace) {
        hetsim_trace::session::start_streaming(self.trace, sink);
        self.finish_traced_run(program, mode)
    }

    fn finish_traced_run(
        &self,
        program: &dyn GpuProgram,
        mode: TransferMode,
    ) -> (RunReport, Trace) {
        if let Some(job) = pool::current_task() {
            // Label every event of this run with its grid slot. The index
            // comes from the work item, never the worker thread, so the
            // labels are identical at every thread count.
            hetsim_trace::session::with(|b| b.set_label(Dim::Job, &job.to_string()));
        }
        let profiler = HostProfiler::new();
        let report = profiler.phase("simulate", || self.runner.run_base(program, mode));
        let trace = hetsim_trace::session::finish().expect("trace session active");
        (report, trace)
    }

    /// Traces the base run of every transfer mode into one recording, the
    /// modes laid out back to back on the sim timeline — a side-by-side
    /// five-mode picture of the same workload.
    ///
    /// Each mode records into its own thread-local session (so the five
    /// runs can execute on [`pool`] workers), and the
    /// finished per-mode traces are merged in mode order, each placed at
    /// the running sum of its predecessors' end cursors. The merge path
    /// is identical at every thread count, so the exported trace is
    /// byte-identical whether the modes ran serially or in parallel.
    pub fn traced_modes(&self, program: &dyn GpuProgram) -> ([RunReport; 5], Trace) {
        self.traced_modes_into(program, TraceBuilder::new(self.trace))
    }

    /// Like [`Experiment::traced_modes`], but drains the merged recording
    /// through `sink` as the per-mode traces fold in, so the whole
    /// five-mode picture never has to fit in the merge buffer at once.
    ///
    /// The per-mode runs still record into their own (bounded) sessions;
    /// only the *merge* streams. Merging happens in mode order after the
    /// join at every thread count, so the streamed bytes are identical
    /// whether the modes ran serially or across [`pool`] workers.
    pub fn traced_modes_streaming(
        &self,
        program: &dyn GpuProgram,
        sink: Box<dyn TraceSink>,
    ) -> ([RunReport; 5], Trace) {
        self.traced_modes_into(program, TraceBuilder::new(self.trace).with_sink(sink))
    }

    fn traced_modes_into(
        &self,
        program: &dyn GpuProgram,
        mut merged: TraceBuilder,
    ) -> ([RunReport; 5], Trace) {
        let runs: Vec<(RunReport, Trace)> = pool::run(TransferMode::ALL.len(), |i| {
            self.traced_run(program, TransferMode::ALL[i])
        });
        let started = std::time::Instant::now();
        let mut reports = Vec::with_capacity(runs.len());
        for (report, trace) in runs {
            let at = merged.now();
            merged.absorb_at(&trace, at);
            reports.push(report);
        }
        if self.trace.self_profile {
            // The merge is the serial tail of the parallel fan-out (the
            // overhead flagged in ROADMAP's sweep-throughput item), so
            // self-profiling records it as a host span alongside the
            // per-mode `host.simulate` spans it competes with.
            let track = merged.host_track("host.trace_merge");
            merged.span_at(
                track,
                hetsim_trace::Category::Host,
                "trace_merge",
                0,
                started.elapsed().as_nanos() as u64,
            );
        }
        (
            reports.try_into().expect("one report per mode"),
            merged.finish(),
        )
    }
}

impl Default for Experiment {
    fn default() -> Self {
        Experiment::new()
    }
}

/// Mean time components over a run distribution, plus the total's summary
/// statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct MeanReport {
    /// Mean allocation time.
    pub alloc: Nanos,
    /// Mean transfer time.
    pub memcpy: Nanos,
    /// Mean kernel time.
    pub kernel: Nanos,
    /// Mean fixed system overhead.
    pub system: Nanos,
    /// Summary statistics of the per-run totals (for Figs 4–5).
    pub total_summary: Summary,
}

impl MeanReport {
    /// Aggregates a run distribution.
    ///
    /// # Panics
    ///
    /// Panics if `reports` is empty.
    pub fn from_distribution(reports: &[RunReport]) -> Self {
        assert!(!reports.is_empty(), "empty distribution");
        let n = reports.len() as u64;
        let sum =
            |f: fn(&RunReport) -> Nanos| -> Nanos { reports.iter().map(f).sum::<Nanos>() / n };
        let totals: Vec<Nanos> = reports.iter().map(|r| r.total()).collect();
        MeanReport {
            alloc: sum(|r| r.alloc),
            memcpy: sum(|r| r.memcpy),
            kernel: sum(|r| r.kernel),
            system: sum(|r| r.system),
            total_summary: Summary::from_nanos(&totals),
        }
    }

    /// Mean overall execution time (alloc + memcpy + kernel + system).
    pub fn total(&self) -> Nanos {
        self.alloc + self.memcpy + self.kernel + self.system
    }

    /// Mean three-component time, the quantity the paper's normalized
    /// breakdown figures plot.
    pub fn breakdown_total(&self) -> Nanos {
        self.alloc + self.memcpy + self.kernel
    }

    /// One mean component.
    pub fn component(&self, c: Component) -> Nanos {
        match c {
            Component::Alloc => self.alloc,
            Component::Memcpy => self.memcpy,
            Component::Kernel => self.kernel,
        }
    }
}

/// Per-mode mean breakdowns for one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct ModeComparison {
    workload: String,
    means: [MeanReport; 5],
}

impl ModeComparison {
    /// The workload name.
    pub fn workload(&self) -> &str {
        &self.workload
    }

    /// The mean breakdown for one mode.
    pub fn mean(&self, mode: TransferMode) -> &MeanReport {
        &self.means[mode_index(mode)]
    }

    /// Mean total time under `mode`.
    pub fn mean_total(&self, mode: TransferMode) -> Nanos {
        self.mean(mode).breakdown_total()
    }

    /// Mode total normalized to `standard` (the y-axis of Figs 7/8).
    pub fn normalized_total(&self, mode: TransferMode) -> f64 {
        let std = self.mean_total(TransferMode::Standard).as_nanos() as f64;
        if std == 0.0 {
            return 0.0;
        }
        self.mean_total(mode).as_nanos() as f64 / std
    }

    /// One component normalized to the standard mode's total.
    pub fn normalized_component(&self, mode: TransferMode, c: Component) -> f64 {
        let std = self.mean_total(TransferMode::Standard).as_nanos() as f64;
        if std == 0.0 {
            return 0.0;
        }
        self.mean(mode).component(c).as_nanos() as f64 / std
    }

    /// Percent improvement of `mode` over `standard` (positive = faster),
    /// the number the paper's abstract quotes.
    pub fn improvement_pct(&self, mode: TransferMode) -> f64 {
        (1.0 - self.normalized_total(mode)) * 100.0
    }

    /// Renders the comparison as a table of normalized components.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(vec![
            "mode",
            "gpu_kernel",
            "memcpy",
            "allocation",
            "total",
            "vs standard",
        ]);
        for mode in TransferMode::ALL {
            t.row(vec![
                mode.name().to_string(),
                format!("{:.3}", self.normalized_component(mode, Component::Kernel)),
                format!("{:.3}", self.normalized_component(mode, Component::Memcpy)),
                format!("{:.3}", self.normalized_component(mode, Component::Alloc)),
                format!("{:.3}", self.normalized_total(mode)),
                format!("{:+.2}%", self.improvement_pct(mode)),
            ]);
        }
        t
    }
}

pub(crate) fn mode_index(mode: TransferMode) -> usize {
    TransferMode::ALL
        .iter()
        .position(|&m| m == mode)
        .expect("mode in ALL")
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim_workloads::{micro, InputSize};

    fn exp() -> Experiment {
        Experiment::new().with_runs(4)
    }

    #[test]
    fn distribution_length_and_determinism() {
        let w = micro::vector_seq(InputSize::Small);
        let e = exp();
        let d1 = e.distribution(&w, TransferMode::Standard);
        let d2 = e.distribution(&w, TransferMode::Standard);
        assert_eq!(d1.len(), 4);
        assert_eq!(d1, d2, "distributions must be reproducible");
        // Noise differentiates runs.
        assert_ne!(d1[0].total(), d1[1].total());
    }

    #[test]
    fn mean_report_aggregates() {
        let w = micro::vector_seq(InputSize::Small);
        let e = exp();
        let m = e.mean(&w, TransferMode::Standard);
        assert!(m.total() > Nanos::ZERO);
        assert_eq!(m.total(), m.alloc + m.memcpy + m.kernel + m.system);
        assert_eq!(m.total_summary.len(), 4);
    }

    #[test]
    fn normalization_is_one_for_standard() {
        let w = micro::vector_seq(InputSize::Small);
        let cmp = exp().compare_modes(&w);
        assert!((cmp.normalized_total(TransferMode::Standard) - 1.0).abs() < 1e-12);
        let comp_sum = cmp.normalized_component(TransferMode::Standard, Component::Alloc)
            + cmp.normalized_component(TransferMode::Standard, Component::Memcpy)
            + cmp.normalized_component(TransferMode::Standard, Component::Kernel);
        assert!((comp_sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn table_has_five_mode_rows() {
        let w = micro::saxpy(InputSize::Tiny);
        let t = exp().compare_modes(&w).to_table();
        assert_eq!(t.len(), 5);
        assert!(t.to_string().contains("uvm_prefetch_async"));
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn zero_runs_rejected() {
        let _ = Experiment::new().with_runs(0);
    }
}
