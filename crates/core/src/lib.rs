//! # hetsim
//!
//! A full reproduction of *"Performance Implications of Async Memcpy and
//! UVM: A Tale of Two Data Transfer Modes"* (IISWC 2023) as a Rust library,
//! built on a transaction-level CPU-GPU heterogeneous-system simulator.
//!
//! This facade crate ties the stack together:
//!
//! * [`experiment`] — the multi-run measurement harness (the paper's
//!   30-run methodology);
//! * [`figures`] — one data producer per paper figure (Fig 4 … Fig 13),
//!   each returning typed series plus a printable table;
//! * [`headline`] — the paper's §4 aggregate numbers (geo-mean gains,
//!   memcpy savings, kernel overheads) and §6 shares/occupancy;
//! * [`batch`] — the §6.2 inter-job data-transfer model (Fig 14), the
//!   paper's proposed future direction, implemented;
//! * [`extensions`] — studies beyond the paper: classic multi-stream
//!   copy/compute overlap and UVM oversubscription;
//! * [`degradation`] — chaos sweeps over the `hetsim-chaos` fault
//!   injector: degradation curves of slowdown, mode fallback, and
//!   recovery failure as fault pressure rises;
//! * [`verify`] — pre-sweep spec verification via the re-exported
//!   [`sanitizer`] static-analysis crate (`hetsim check` / `--verify-specs`);
//! * the re-exported substrate crates (`engine`, `mem`, `uvm`, `gpu`,
//!   `runtime`, `workloads`, `counters`).
//!
//! # Quickstart
//!
//! ```
//! use hetsim::prelude::*;
//!
//! // Run kmeans at a small size under all five transfer modes.
//! let exp = Experiment::new().with_runs(3);
//! let kmeans = hetsim::workloads::by_name("kmeans", InputSize::Small).unwrap();
//! let cmp = exp.compare_modes(&kmeans);
//! for mode in TransferMode::ALL {
//!     let t = cmp.mean_total(mode);
//!     assert!(t > hetsim::engine::time::Nanos::ZERO);
//! }
//! println!("{}", cmp.to_table());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod cache;
pub mod degradation;
pub mod experiment;
pub mod extensions;
pub mod figures;
pub mod headline;
pub mod memo;
pub mod pool;
pub mod verify;

/// The discrete-event simulation core.
pub use hetsim_engine as engine;

/// CUPTI-like counters and report tables.
pub use hetsim_counters as counters;

/// Memory-hierarchy substrate.
pub use hetsim_mem as mem;

/// UVM substrate.
pub use hetsim_uvm as uvm;

/// GPU execution model.
pub use hetsim_gpu as gpu;

/// CUDA-like runtime.
pub use hetsim_runtime as runtime;

/// The 21-workload benchmark suite.
pub use hetsim_workloads as workloads;

/// Static spec analysis (the compute-sanitizer analogue).
pub use hetsim_sanitizer as sanitizer;

pub use batch::{InterJobPipeline, PipelineEstimate};
pub use cache::{CacheChoice, CacheKey, CacheScan, CacheStats, DiskCache};
pub use degradation::{ChaosCell, ChaosSweep, ChaosSweepConfig};
pub use experiment::{Experiment, MeanReport, ModeComparison};
pub use memo::{MemoStats, ShardedMemo};

/// The types nearly every user of the crate needs.
pub mod prelude {
    pub use crate::batch::{InterJobPipeline, PipelineEstimate};
    pub use crate::degradation::{ChaosCell, ChaosSweep, ChaosSweepConfig};
    pub use crate::experiment::{Experiment, MeanReport, ModeComparison};
    pub use hetsim_counters::report::Table;
    pub use hetsim_engine::stats::{geomean, Summary};
    pub use hetsim_engine::time::Nanos;
    pub use hetsim_runtime::{Device, GpuProgram, RunReport, Runner, TransferMode};
    pub use hetsim_workloads::{micro, suite, InputSize};
}
