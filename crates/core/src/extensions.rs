//! Extension studies beyond the paper's evaluation, built from the same
//! substrate:
//!
//! * [`overlapped_standard`] — the *classic* transfer-hiding technique the
//!   paper's §2.2 describes as a decade of prior work: split the explicit
//!   copies into chunks and pipeline them against the kernel over CUDA
//!   streams. This gives the repository the natural third point of
//!   comparison (streams vs UVM-prefetch vs cp.async).
//! * [`pinned_standard`] — explicit copies from *pinned* host memory
//!   (`cudaHostAlloc`), the other classic fix for pageable-copy overhead;
//! * [`oversubscription_sweep`] — what happens when the managed footprint
//!   exceeds device memory (the regime of Shao et al., cited in §2.1):
//!   UVM keeps working but thrashes the eviction path.

use hetsim_counters::report::Table;
use hetsim_engine::time::Nanos;
use hetsim_mem::link::LinkPath;
use hetsim_runtime::stream::{Engine, StreamSchedule};
use hetsim_runtime::{Device, GpuProgram, Runner, TransferMode};
use hetsim_workloads::spec::Workload;

/// The outcome of stream-pipelining a standard-mode run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OverlapEstimate {
    /// Serial time of the pipelined region (H2D + kernel + D2H).
    pub serial: Nanos,
    /// Pipelined time of the same region.
    pub overlapped: Nanos,
    /// Allocation + system time that no stream can hide.
    pub unhidden: Nanos,
}

impl OverlapEstimate {
    /// End-to-end serial total.
    pub fn serial_total(&self) -> Nanos {
        self.serial + self.unhidden
    }

    /// End-to-end pipelined total.
    pub fn overlapped_total(&self) -> Nanos {
        self.overlapped + self.unhidden
    }

    /// End-to-end improvement fraction.
    pub fn improvement(&self) -> f64 {
        let s = self.serial_total().as_nanos() as f64;
        if s == 0.0 {
            0.0
        } else {
            1.0 - self.overlapped_total().as_nanos() as f64 / s
        }
    }
}

/// Evaluates the classic multi-stream copy/compute overlap on a program's
/// standard-mode costs: the explicit copies and the kernel are split into
/// `chunks` chunks spread over `streams` streams.
///
/// # Panics
///
/// Panics if `chunks` or `streams` is zero.
pub fn overlapped_standard(
    runner: &Runner,
    program: &dyn GpuProgram,
    chunks: u32,
    streams: u32,
) -> OverlapEstimate {
    assert!(chunks > 0 && streams > 0, "need chunks and streams");
    let base = runner.run_base(program, TransferMode::Standard);
    // The H2D and D2H shares of the measured memcpy time.
    let h2d_bytes = base.counters.transfer.h2d_bytes();
    let total_bytes = base.counters.transfer.total_bytes().max(1);
    let h2d = base.memcpy.scale(h2d_bytes as f64 / total_bytes as f64);
    let d2h = base.memcpy.saturating_sub(h2d);

    let schedule = StreamSchedule::chunked_pipeline(
        chunks,
        streams,
        h2d / chunks as u64,
        base.kernel / chunks as u64,
        d2h / chunks as u64,
    );
    let outcome = schedule.run();
    OverlapEstimate {
        serial: base.memcpy + base.kernel,
        overlapped: outcome.makespan(),
        unhidden: base.alloc + base.system,
    }
}

/// Renders an overlap comparison across stream counts.
pub fn overlap_table(runner: &Runner, program: &dyn GpuProgram, chunks: u32) -> Table {
    let mut t = Table::new(vec!["streams", "pipelined_region", "total", "improvement"]);
    for streams in [1u32, 2, 4, 8] {
        let e = overlapped_standard(runner, program, chunks, streams);
        t.row(vec![
            streams.to_string(),
            e.overlapped.to_string(),
            e.overlapped_total().to_string(),
            format!("{:.2}%", e.improvement() * 100.0),
        ]);
    }
    t
}

/// Re-prices a standard-mode run's explicit copies at pinned-host DMA
/// bandwidth (`cudaHostAlloc` + `cudaMemcpy`): the classic alternative to
/// both UVM and stream pipelining. Pinning costs extra allocation time
/// (page-locking scales with size), which is why the paper's workloads
/// don't default to it.
pub fn pinned_standard(runner: &Runner, program: &dyn GpuProgram) -> hetsim_runtime::RunReport {
    let mut report = runner.run_base(program, TransferMode::Standard);
    let link = &runner.device().link;
    let mut memcpy = Nanos::ZERO;
    for b in program.buffers() {
        if b.role.is_input() {
            memcpy += link.transfer_time(LinkPath::PinnedCopy, b.bytes);
        }
        if b.role.is_output() {
            memcpy += link.transfer_time(LinkPath::PinnedCopy, b.bytes);
        }
    }
    report.memcpy = memcpy;
    // cudaHostAlloc page-locks every page: ~30 ms/GiB on top of malloc.
    let gib = program.footprint() as f64 / (1u64 << 30) as f64;
    report.alloc += Nanos::from_millis(30).scale(gib);
    report
}

/// Compares the transfer-hiding alternatives on one program: pageable
/// standard, pinned standard, 4-stream overlap, and uvm_prefetch.
pub fn alternatives_table(runner: &Runner, program: &dyn GpuProgram) -> Table {
    let std = runner.run_base(program, TransferMode::Standard);
    let pinned = pinned_standard(runner, program);
    let overlap = overlapped_standard(runner, program, 8, 4);
    let pf = runner.run_base(program, TransferMode::UvmPrefetch);
    let base = std.total().as_nanos() as f64;
    let mut t = Table::new(vec!["approach", "total", "vs standard"]);
    let mut row = |name: &str, total: Nanos| {
        t.row(vec![
            name.to_string(),
            total.to_string(),
            format!("{:+.2}%", (1.0 - total.as_nanos() as f64 / base) * 100.0),
        ]);
    };
    row("standard (pageable)", std.total());
    row("standard (pinned)", pinned.total());
    row("standard + 4 streams", overlap.overlapped_total());
    row("uvm_prefetch", pf.total());
    t
}

/// One point of the oversubscription sweep.
#[derive(Debug, Clone)]
pub struct OversubscriptionPoint {
    /// Footprint over device capacity.
    pub ratio: f64,
    /// Normalized total vs the fits-in-memory run of the same mode.
    pub slowdown: f64,
    /// Chunks evicted during the run.
    pub evictions: u64,
}

/// Sweeps device capacity below a workload's footprint and measures the
/// `uvm` mode's degradation. `build` constructs the workload; ratios are
/// footprint/capacity (1.0 = exactly fits).
pub fn oversubscription_sweep(
    build: impl Fn() -> Workload,
    ratios: &[f64],
) -> Vec<OversubscriptionPoint> {
    let w = build();
    let footprint = w.footprint();

    let run_with_capacity = |capacity: u64| {
        let mut device = Device::a100_epyc();
        device.uvm.device_capacity = capacity;
        let runner = Runner::new(device);
        runner.run_base(&w, TransferMode::Uvm)
    };

    // Baseline: plenty of device memory.
    let base = run_with_capacity(footprint * 2);
    let base_total = base.total().as_nanos() as f64;

    ratios
        .iter()
        .map(|&ratio| {
            assert!(ratio > 0.0, "ratio must be positive");
            let capacity = ((footprint as f64 / ratio) as u64).max(1 << 20);
            let r = run_with_capacity(capacity);
            OversubscriptionPoint {
                ratio,
                slowdown: r.total().as_nanos() as f64 / base_total,
                evictions: r.counters.uvm.pages_evicted(),
            }
        })
        .collect()
}

/// Renders an oversubscription sweep.
pub fn oversubscription_table(points: &[OversubscriptionPoint]) -> Table {
    let mut t = Table::new(vec!["footprint/capacity", "slowdown", "evictions"]);
    for p in points {
        t.row(vec![
            format!("{:.2}", p.ratio),
            format!("{:.3}x", p.slowdown),
            p.evictions.to_string(),
        ]);
    }
    t
}

/// Checks a stream schedule invariant used by tests: the compute engine is
/// never idle between the first and last kernel when streams ≥ 2 and the
/// kernel is the bottleneck stage.
pub fn compute_bound_utilization(chunks: u32, streams: u32) -> f64 {
    let s = StreamSchedule::chunked_pipeline(
        chunks,
        streams,
        Nanos::from_micros(5),
        Nanos::from_micros(20),
        Nanos::from_micros(5),
    );
    s.run().utilization(Engine::Compute)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim_workloads::{micro, InputSize};

    #[test]
    fn overlap_helps_transfer_bound_programs() {
        let runner = Runner::new(Device::a100_epyc());
        let w = micro::vector_seq(InputSize::Medium);
        let serial = overlapped_standard(&runner, &w, 8, 1);
        let piped = overlapped_standard(&runner, &w, 8, 4);
        assert!(piped.overlapped < serial.overlapped);
        assert!(piped.improvement() > 0.0);
        // Lower bound: the pipelined region can't beat its longest stage.
        let base = runner.run_base(&w, TransferMode::Standard);
        assert!(piped.overlapped >= base.kernel.min(base.memcpy) / 8u64);
    }

    #[test]
    fn overlap_cannot_hide_allocation() {
        let runner = Runner::new(Device::a100_epyc());
        let w = micro::saxpy(InputSize::Small);
        let e = overlapped_standard(&runner, &w, 4, 4);
        let base = runner.run_base(&w, TransferMode::Standard);
        assert_eq!(e.unhidden, base.alloc + base.system);
        assert!(e.overlapped_total() >= e.unhidden);
    }

    #[test]
    fn oversubscription_degrades_monotonically() {
        let points =
            oversubscription_sweep(|| micro::vector_seq(InputSize::Small), &[1.0, 1.5, 2.0]);
        assert_eq!(points.len(), 3);
        assert_eq!(points[0].evictions, 0, "exact fit evicts nothing");
        assert!(points[2].evictions > points[1].evictions);
        assert!(points[2].slowdown >= points[1].slowdown * 0.99);
        assert!(points[1].slowdown >= 1.0);
    }

    #[test]
    fn compute_bound_pipeline_saturates_sms() {
        let u = compute_bound_utilization(16, 4);
        assert!(u > 0.85, "compute engine should stay busy, got {u}");
    }

    #[test]
    fn pinned_beats_pageable_copies_but_costs_allocation() {
        let runner = Runner::new(Device::a100_epyc());
        let w = micro::vector_seq(InputSize::Medium);
        let std = runner.run_base(&w, TransferMode::Standard);
        let pinned = pinned_standard(&runner, &w);
        assert!(pinned.memcpy < std.memcpy, "pinned DMA is faster");
        assert!(
            pinned.alloc > std.alloc,
            "page-locking costs allocation time"
        );
        assert_eq!(pinned.kernel, std.kernel, "kernels are untouched");
    }

    #[test]
    fn alternatives_table_has_four_rows() {
        let runner = Runner::new(Device::a100_epyc());
        let w = micro::saxpy(InputSize::Small);
        assert_eq!(alternatives_table(&runner, &w).len(), 4);
    }

    #[test]
    fn tables_render() {
        let runner = Runner::new(Device::a100_epyc());
        let w = micro::saxpy(InputSize::Tiny);
        assert_eq!(overlap_table(&runner, &w, 4).len(), 4);
        let pts = oversubscription_sweep(|| micro::vector_seq(InputSize::Tiny), &[1.0]);
        assert_eq!(oversubscription_table(&pts).len(), 1);
    }
}
