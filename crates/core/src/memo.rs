//! Sharded, single-flight memoization for base-run results.
//!
//! The old base-run memo was one `Mutex<HashMap>` with a check-then-insert
//! window: two pool workers could both miss the same key and both simulate
//! the cell, and every lookup serialized the whole grid on one lock. This
//! module replaces it with a sharded map of [`OnceLock`] cells:
//!
//! * lookups take a per-shard read lock (different cells never contend);
//! * the *first* worker to claim a key's cell computes it while any other
//!   worker arriving at the same key blocks on that cell — the simulation
//!   runs exactly once per key (single-flight), which the
//!   `no_duplicate_simulation` test pins via the compute counter.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

/// Number of independently locked shards. Sixteen is far beyond the pool's
/// worker count, so two workers only contend when they race on the *same*
/// key — exactly the case single-flight exists to serialize.
const SHARDS: usize = 16;

type Shard<K, V> = RwLock<HashMap<K, Arc<OnceLock<V>>>>;

/// A concurrent memo map with per-key single-flight computation.
pub struct ShardedMemo<K, V> {
    shards: Vec<Shard<K, V>>,
    lookups: AtomicU64,
    computes: AtomicU64,
    lookup_ns: AtomicU64,
    compute_ns: AtomicU64,
}

/// Counter snapshot for a [`ShardedMemo`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoStats {
    /// Number of distinct keys resident in the map.
    pub entries: usize,
    /// Total `get_or_compute` calls.
    pub lookups: u64,
    /// Times the compute closure actually ran. With single-flight this
    /// equals `entries` no matter how many workers raced.
    pub computes: u64,
    /// Wall-clock nanoseconds spent inside `get_or_compute` in total
    /// (shard locking, key hashing, the compute closure, result clones).
    pub lookup_ns: u64,
    /// Wall-clock nanoseconds spent inside the compute closures alone.
    pub compute_ns: u64,
}

impl MemoStats {
    /// Wall-clock nanoseconds of pure memo bookkeeping: lookup time that
    /// was *not* spent computing values. This is the sweep executor's
    /// memoization overhead, the quantity the `--self-profile` grid
    /// stage in `scripts/bench.sh` records per PR.
    pub fn overhead_ns(&self) -> u64 {
        self.lookup_ns.saturating_sub(self.compute_ns)
    }
}

impl<K: Hash + Eq, V: Clone> ShardedMemo<K, V> {
    /// An empty memo.
    pub fn new() -> Self {
        ShardedMemo {
            shards: (0..SHARDS).map(|_| Shard::default()).collect(),
            lookups: AtomicU64::new(0),
            computes: AtomicU64::new(0),
            lookup_ns: AtomicU64::new(0),
            compute_ns: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &K) -> &Shard<K, V> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[h.finish() as usize % SHARDS]
    }

    /// Returns the cached value for `key`, computing it with `compute` on
    /// first use. Concurrent callers with the same key block until the one
    /// in-flight computation finishes and then share its result; callers
    /// with different keys proceed independently.
    pub fn get_or_compute(&self, key: K, compute: impl FnOnce() -> V) -> V {
        let entered = Instant::now();
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let shard = self.shard(&key);
        let cell = {
            let read = shard.read().unwrap_or_else(|p| p.into_inner());
            read.get(&key).cloned()
        };
        let cell = cell.unwrap_or_else(|| {
            let mut write = shard.write().unwrap_or_else(|p| p.into_inner());
            write
                .entry(key)
                .or_insert_with(|| Arc::new(OnceLock::new()))
                .clone()
        });
        let value = cell
            .get_or_init(|| {
                self.computes.fetch_add(1, Ordering::Relaxed);
                let started = Instant::now();
                let v = compute();
                self.compute_ns
                    .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
                v
            })
            .clone();
        self.lookup_ns
            .fetch_add(entered.elapsed().as_nanos() as u64, Ordering::Relaxed);
        value
    }

    /// Number of distinct keys resident (initialized or in flight).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().unwrap_or_else(|p| p.into_inner()).len())
            .sum()
    }

    /// Whether the memo holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookup/compute counters (counts are deterministic; the wall-clock
    /// nanosecond totals vary run to run and exist for `--self-profile`).
    pub fn stats(&self) -> MemoStats {
        MemoStats {
            entries: self.len(),
            lookups: self.lookups.load(Ordering::Relaxed),
            computes: self.computes.load(Ordering::Relaxed),
            lookup_ns: self.lookup_ns.load(Ordering::Relaxed),
            compute_ns: self.compute_ns.load(Ordering::Relaxed),
        }
    }
}

impl<K: Hash + Eq, V: Clone> Default for ShardedMemo<K, V> {
    fn default() -> Self {
        ShardedMemo::new()
    }
}

impl<K, V> std::fmt::Debug for ShardedMemo<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedMemo")
            .field("lookups", &self.lookups.load(Ordering::Relaxed))
            .field("computes", &self.computes.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn computes_once_per_key() {
        let memo: ShardedMemo<u32, u32> = ShardedMemo::new();
        let calls = AtomicUsize::new(0);
        for _ in 0..10 {
            let v = memo.get_or_compute(7, || {
                calls.fetch_add(1, Ordering::Relaxed);
                42
            });
            assert_eq!(v, 42);
        }
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        let stats = memo.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.lookups, 10);
        assert_eq!(stats.computes, 1);
    }

    #[test]
    fn distinct_keys_compute_independently() {
        let memo: ShardedMemo<String, usize> = ShardedMemo::new();
        for i in 0..100 {
            let v = memo.get_or_compute(format!("k{i}"), || i);
            assert_eq!(v, i);
        }
        assert_eq!(memo.len(), 100);
        assert_eq!(memo.stats().computes, 100);
    }

    #[test]
    fn single_flight_under_threads() {
        let memo: Arc<ShardedMemo<u8, u64>> = Arc::new(ShardedMemo::new());
        let calls = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let memo = Arc::clone(&memo);
                let calls = Arc::clone(&calls);
                s.spawn(move || {
                    for _ in 0..50 {
                        let v = memo.get_or_compute(3, || {
                            calls.fetch_add(1, Ordering::Relaxed);
                            // Widen the race window: any double-compute
                            // would be caught by the counter below.
                            std::thread::yield_now();
                            99
                        });
                        assert_eq!(v, 99);
                    }
                });
            }
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1, "simulation ran twice");
        assert_eq!(memo.stats().computes, 1);
    }

    #[test]
    fn wall_clock_counters_cover_compute_time() {
        let memo: ShardedMemo<u8, u8> = ShardedMemo::new();
        memo.get_or_compute(1, || {
            std::thread::sleep(std::time::Duration::from_millis(2));
            9
        });
        memo.get_or_compute(1, || 9);
        let stats = memo.stats();
        assert!(stats.compute_ns >= 2_000_000, "sleep not captured");
        assert!(stats.lookup_ns >= stats.compute_ns, "lookup covers compute");
        assert_eq!(stats.overhead_ns(), stats.lookup_ns - stats.compute_ns);
    }

    #[test]
    fn empty_and_len() {
        let memo: ShardedMemo<u8, u8> = ShardedMemo::default();
        assert!(memo.is_empty());
        memo.get_or_compute(1, || 1);
        assert!(!memo.is_empty());
        assert_eq!(memo.len(), 1);
    }
}
