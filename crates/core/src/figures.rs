//! One data producer per paper figure.
//!
//! Every function takes an [`Experiment`] (so tests can shrink the run
//! count) and returns a typed data set with a `to_table()` renderer that
//! prints the same rows/series the paper plots. The benches in
//! `hetsim-bench` regenerate each figure from these producers.

use crate::experiment::{Experiment, ModeComparison};
use crate::pool;
use hetsim_counters::report::{num, Table};
use hetsim_counters::InstClass;
use hetsim_engine::stats::{geomean, Summary};
use hetsim_engine::time::Nanos;
use hetsim_mem::carveout::Carveout;
use hetsim_runtime::{RunReport, TransferMode};
use hetsim_workloads::{micro, suite, InputSize};

/// Fig 4: overall-execution-time distributions of the microbenchmarks
/// across input sizes and modes.
#[derive(Debug, Clone)]
pub struct DistributionGrid {
    rows: Vec<DistributionRow>,
}

/// One cell of the Fig 4 grid.
#[derive(Debug, Clone)]
pub struct DistributionRow {
    /// Input size preset.
    pub size: InputSize,
    /// Workload name.
    pub workload: String,
    /// Transfer mode.
    pub mode: TransferMode,
    /// Summary of the per-run totals, nanoseconds.
    pub summary: Summary,
}

impl DistributionGrid {
    /// The rows.
    pub fn rows(&self) -> &[DistributionRow] {
        &self.rows
    }

    /// Coefficient of variation averaged over the five modes for one
    /// `(workload, size)` cell — the Fig 5 quantity.
    pub fn mean_cv(&self, workload: &str, size: InputSize) -> f64 {
        let cvs: Vec<f64> = self
            .rows
            .iter()
            .filter(|r| r.workload == workload && r.size == size)
            .map(|r| r.summary.cv())
            .collect();
        if cvs.is_empty() {
            0.0
        } else {
            cvs.iter().sum::<f64>() / cvs.len() as f64
        }
    }

    /// Geometric mean of [`DistributionGrid::mean_cv`] over workloads at
    /// one size (the Fig 5 geo-mean bars).
    pub fn geomean_cv(&self, size: InputSize) -> f64 {
        let mut names: Vec<&str> = self.rows.iter().map(|r| r.workload.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        let cvs: Vec<f64> = names.iter().map(|w| self.mean_cv(w, size)).collect();
        geomean(&cvs)
    }

    /// Renders the grid (mean ± std per cell).
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(vec!["size", "workload", "mode", "mean_ns", "std_ns", "cv"]);
        for r in &self.rows {
            t.row(vec![
                r.size.name().to_string(),
                r.workload.clone(),
                r.mode.name().to_string(),
                num(r.summary.mean()),
                num(r.summary.std()),
                format!("{:.4}", r.summary.cv()),
            ]);
        }
        t
    }
}

/// Fig 4: distributions of the 7 microbenchmarks at the given sizes.
///
/// The full `size × workload × mode` grid is flattened into one job list
/// and fanned over the [`pool`] workers; row order matches the serial
/// triple loop exactly.
pub fn fig4(exp: &Experiment, sizes: &[InputSize]) -> DistributionGrid {
    let mut cells = Vec::new();
    for &size in sizes {
        for entry in suite::micro_names() {
            for mode in TransferMode::ALL {
                cells.push((size, entry, mode));
            }
        }
    }
    let rows = pool::run(cells.len(), |i| {
        let (size, entry, mode) = cells[i];
        let w = (entry.build)(size);
        let reports = exp.distribution(&w, mode);
        let totals: Vec<Nanos> = reports.iter().map(|r| r.total()).collect();
        DistributionRow {
            size,
            workload: entry.name.to_string(),
            mode,
            summary: Summary::from_nanos(&totals),
        }
    });
    DistributionGrid { rows }
}

/// Fig 5: std/mean stability per workload and size, derived from the same
/// distributions as Fig 4.
pub fn fig5(grid: &DistributionGrid, sizes: &[InputSize]) -> Table {
    let mut names: Vec<String> = grid.rows().iter().map(|r| r.workload.clone()).collect();
    names.sort();
    names.dedup();
    let mut headers = vec!["workload".to_string()];
    headers.extend(sizes.iter().map(|s| s.name().to_string()));
    let mut t = Table::new(headers);
    for w in &names {
        let mut row = vec![w.clone()];
        row.extend(sizes.iter().map(|&s| format!("{:.4}", grid.mean_cv(w, s))));
        t.row(row);
    }
    let mut geo = vec!["geo-mean".to_string()];
    geo.extend(sizes.iter().map(|&s| format!("{:.4}", grid.geomean_cv(s))));
    t.row(geo);
    t
}

/// Fig 6: the per-run breakdown of `vector_seq` at Mega inputs, exposing
/// the unstable memcpy component.
#[derive(Debug, Clone)]
pub struct MegaBreakdown {
    runs: Vec<RunReport>,
}

impl MegaBreakdown {
    /// The per-run reports.
    pub fn runs(&self) -> &[RunReport] {
        &self.runs
    }

    /// CV of one component across runs.
    pub fn component_cv(&self, f: fn(&RunReport) -> Nanos) -> f64 {
        let xs: Vec<Nanos> = self.runs.iter().map(f).collect();
        Summary::from_nanos(&xs).cv()
    }

    /// Renders the per-run breakdown (the Fig 6 bars).
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(vec!["run", "gpu_kernel_ns", "allocation_ns", "memcpy_ns"]);
        for (i, r) in self.runs.iter().enumerate() {
            t.row(vec![
                i.to_string(),
                r.kernel.as_nanos().to_string(),
                r.alloc.as_nanos().to_string(),
                r.memcpy.as_nanos().to_string(),
            ]);
        }
        t
    }
}

/// Fig 6: 30-run breakdown of `vector_seq` at Mega inputs.
pub fn fig6(exp: &Experiment) -> MegaBreakdown {
    let w = micro::vector_seq(InputSize::Mega);
    MegaBreakdown {
        runs: exp.distribution(&w, TransferMode::Standard),
    }
}

/// Figs 7/8: per-workload normalized mode comparisons for a whole suite.
#[derive(Debug, Clone)]
pub struct SuiteComparison {
    /// Input size the suite ran at.
    pub size: InputSize,
    comparisons: Vec<ModeComparison>,
}

impl SuiteComparison {
    /// Per-workload comparisons.
    pub fn comparisons(&self) -> &[ModeComparison] {
        &self.comparisons
    }

    /// The comparison for one workload.
    pub fn workload(&self, name: &str) -> Option<&ModeComparison> {
        self.comparisons.iter().find(|c| c.workload() == name)
    }

    /// Geometric-mean normalized total for a mode across the suite — the
    /// quantity behind the paper's "+21%/+22.5%" headlines.
    pub fn geomean_normalized(&self, mode: TransferMode) -> f64 {
        let xs: Vec<f64> = self
            .comparisons
            .iter()
            .map(|c| c.normalized_total(mode))
            .collect();
        geomean(&xs)
    }

    /// Geometric-mean percent improvement over standard (positive =
    /// faster).
    pub fn geomean_improvement_pct(&self, mode: TransferMode) -> f64 {
        (1.0 - self.geomean_normalized(mode)) * 100.0
    }

    /// Renders normalized totals per workload and mode.
    pub fn to_table(&self) -> Table {
        let mut headers = vec!["workload".to_string()];
        headers.extend(TransferMode::ALL.iter().map(|m| m.name().to_string()));
        let mut t = Table::new(headers);
        for c in &self.comparisons {
            let mut row = vec![c.workload().to_string()];
            row.extend(
                TransferMode::ALL
                    .iter()
                    .map(|&m| format!("{:.3}", c.normalized_total(m))),
            );
            t.row(row);
        }
        let mut geo = vec!["geo-mean".to_string()];
        geo.extend(
            TransferMode::ALL
                .iter()
                .map(|&m| format!("{:.3}", self.geomean_normalized(m))),
        );
        t.row(geo);
        t
    }
}

/// Fig 7: the 7 microbenchmarks compared across modes at one size
/// (the paper shows Large and Super).
pub fn fig7(exp: &Experiment, size: InputSize) -> SuiteComparison {
    SuiteComparison {
        size,
        comparisons: compare_suite(exp, suite::micro_suite(size)),
    }
}

/// Fans `compare_modes` over a suite's workloads on the [`pool`] workers;
/// output order matches the suite order. (Each job's inner five-mode
/// fan-out degrades to serial inside a worker, so workload-level
/// parallelism is what scales here.)
fn compare_suite(
    exp: &Experiment,
    workloads: Vec<hetsim_workloads::Workload>,
) -> Vec<ModeComparison> {
    pool::run(workloads.len(), |i| exp.compare_modes(&workloads[i]))
}

/// Fig 8: the 14 applications compared across modes at Super inputs.
pub fn fig8(exp: &Experiment) -> SuiteComparison {
    fig8_at(exp, InputSize::Super)
}

/// Fig 8 at an arbitrary size (tests use smaller inputs).
pub fn fig8_at(exp: &Experiment, size: InputSize) -> SuiteComparison {
    SuiteComparison {
        size,
        comparisons: compare_suite(exp, suite::app_suite(size)),
    }
}

/// The irregular-access study set (fault-batcher stress): bfs plus the
/// two Table 2 applications carrying temporal touch models.
pub const IRREGULAR_WORKLOADS: [&str; 3] = hetsim_workloads::IRREGULAR_TRIO;

/// The irregular study: bfs, kmeans, and pathfinder compared across all
/// five modes at one size. Complements Figs 7/8 with workloads whose
/// temporal page-touch sequences drive the UVM fault batcher directly —
/// the regime where `uvm_prefetch` gains shrink (bfs) and fault batches
/// retire under-filled.
pub fn irregular(exp: &Experiment, size: InputSize) -> SuiteComparison {
    SuiteComparison {
        size,
        comparisons: compare_suite(exp, suite::irregular_suite(size)),
    }
}

/// Figs 9/10: per-mode hardware counters for the three deep-dive
/// workloads (gemm, lud, yolov3).
#[derive(Debug, Clone)]
pub struct CounterComparison {
    rows: Vec<CounterRow>,
}

/// One (workload, mode) counter record.
#[derive(Debug, Clone)]
pub struct CounterRow {
    /// Workload name.
    pub workload: String,
    /// Transfer mode.
    pub mode: TransferMode,
    /// Control instructions (Fig 9a).
    pub control: u64,
    /// Integer instructions (Fig 9b).
    pub integer: u64,
    /// L1 global load miss rate (Fig 10a).
    pub load_miss_rate: f64,
    /// L1 global store miss rate (Fig 10b).
    pub store_miss_rate: f64,
}

impl CounterComparison {
    /// The rows.
    pub fn rows(&self) -> &[CounterRow] {
        &self.rows
    }

    /// One row.
    pub fn row(&self, workload: &str, mode: TransferMode) -> Option<&CounterRow> {
        self.rows
            .iter()
            .find(|r| r.workload == workload && r.mode == mode)
    }

    /// Renders instruction counts and miss rates.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(vec![
            "workload",
            "mode",
            "control_inst",
            "integer_inst",
            "load_miss_rate",
            "store_miss_rate",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.workload.clone(),
                r.mode.name().to_string(),
                r.control.to_string(),
                r.integer.to_string(),
                format!("{:.4}", r.load_miss_rate),
                format!("{:.4}", r.store_miss_rate),
            ]);
        }
        t
    }
}

/// The paper's three deep-dive workloads.
pub const DEEP_DIVE_WORKLOADS: [&str; 3] = ["gemm", "lud", "yolov3"];

/// Figs 9 and 10: instruction mix and L1 miss rates for gemm, lud, and
/// yolov3 across all five modes.
pub fn fig9_fig10(exp: &Experiment, size: InputSize) -> CounterComparison {
    let workloads: Vec<_> = DEEP_DIVE_WORKLOADS
        .iter()
        .map(|name| {
            (
                *name,
                suite::by_name(name, size).expect("deep-dive workload exists"),
            )
        })
        .collect();
    let mut cells = Vec::new();
    for (name, w) in &workloads {
        for mode in TransferMode::ALL {
            cells.push((*name, w, mode));
        }
    }
    let rows = pool::run(cells.len(), |i| {
        let (name, w, mode) = cells[i];
        let r = exp.base_run(w, mode);
        CounterRow {
            workload: name.to_string(),
            mode,
            control: r.counters.inst.get(InstClass::Control),
            integer: r.counters.inst.get(InstClass::Int),
            load_miss_rate: r.counters.l1.load_miss_rate(),
            store_miss_rate: r.counters.l1.store_miss_rate(),
        }
    });
    CounterComparison { rows }
}

/// Figs 11–13: a parameter sweep of `vector_seq` mode comparisons.
#[derive(Debug, Clone)]
pub struct SweepComparison {
    /// Swept parameter name.
    pub parameter: &'static str,
    points: Vec<(u64, ModeComparison)>,
}

impl SweepComparison {
    /// The sweep points.
    pub fn points(&self) -> &[(u64, ModeComparison)] {
        &self.points
    }

    /// Total time of `(param, mode)` normalized to `standard` at the first
    /// sweep point.
    pub fn normalized(&self, param: u64, mode: TransferMode) -> f64 {
        let reference = self.points[0]
            .1
            .mean_total(TransferMode::Standard)
            .as_nanos() as f64;
        let point = self
            .points
            .iter()
            .find(|(p, _)| *p == param)
            .expect("param in sweep");
        point.1.mean_total(mode).as_nanos() as f64 / reference
    }

    /// Kernel time of `(param, mode)` normalized to `standard`'s kernel at
    /// the first sweep point — where the paper's §5 sensitivities live
    /// (e.g. its 3.95× thread-count kernel swing).
    pub fn kernel_normalized(&self, param: u64, mode: TransferMode) -> f64 {
        use hetsim_runtime::report::Component;
        let reference = self.points[0]
            .1
            .mean(TransferMode::Standard)
            .component(Component::Kernel)
            .as_nanos() as f64;
        let point = self
            .points
            .iter()
            .find(|(p, _)| *p == param)
            .expect("param in sweep");
        point.1.mean(mode).component(Component::Kernel).as_nanos() as f64 / reference.max(1.0)
    }

    /// Renders normalized totals per point and mode.
    pub fn to_table(&self) -> Table {
        self.render(|p, m| self.normalized(p, m))
    }

    /// Renders normalized *kernel* times per point and mode.
    pub fn kernel_table(&self) -> Table {
        self.render(|p, m| self.kernel_normalized(p, m))
    }

    fn render(&self, f: impl Fn(u64, TransferMode) -> f64) -> Table {
        let mut headers = vec![self.parameter.to_string()];
        headers.extend(TransferMode::ALL.iter().map(|m| m.name().to_string()));
        let mut t = Table::new(headers);
        for (p, _) in &self.points {
            let mut row = vec![p.to_string()];
            row.extend(
                TransferMode::ALL
                    .iter()
                    .map(|&m| format!("{:.3}", f(*p, m))),
            );
            t.row(row);
        }
        t
    }
}

/// The paper's Fig 11 block-count sweep points.
pub const FIG11_BLOCKS: [u64; 9] = [4096, 2048, 1024, 512, 256, 128, 64, 32, 16];

/// Fig 11: sensitivity of `vector_seq` to the number of blocks
/// (256 threads per block).
pub fn fig11(exp: &Experiment, size: InputSize) -> SweepComparison {
    let points = pool::run(FIG11_BLOCKS.len(), |i| {
        let blocks = FIG11_BLOCKS[i];
        let w = micro::vector_seq_custom(size, blocks, 256);
        (blocks, exp.compare_modes(&w))
    });
    SweepComparison {
        parameter: "blocks",
        points,
    }
}

/// The paper's Fig 12 threads-per-block sweep points.
pub const FIG12_THREADS: [u64; 6] = [1024, 512, 256, 128, 64, 32];

/// Fig 12: sensitivity of `vector_seq` to threads per block (64 blocks).
pub fn fig12(exp: &Experiment, size: InputSize) -> SweepComparison {
    let points = pool::run(FIG12_THREADS.len(), |i| {
        let threads = FIG12_THREADS[i];
        let w = micro::vector_seq_custom(size, 64, threads as u32);
        (threads, exp.compare_modes(&w))
    });
    SweepComparison {
        parameter: "threads",
        points,
    }
}

/// Fig 13: sensitivity of `vector_seq` to the L1-cache/shared-memory
/// carveout (2 KB → 128 KB shared). The device carveout and the kernel's
/// shared-memory buffer move together, as in the paper.
pub fn fig13(exp: &Experiment, size: InputSize) -> SweepComparison {
    let sweep = Carveout::fig13_sweep();
    let points = pool::run(sweep.len(), |i| {
        let carveout = sweep[i];
        let mut device = exp.runner().device().clone();
        device.gpu = device.gpu.with_carveout(carveout);
        let e = Experiment::new().with_device(device).with_runs(exp.runs());
        let w = micro::vector_seq_shared(size, carveout.shared_bytes());
        (carveout.shared_bytes() / 1024, e.compare_modes(&w))
    });
    SweepComparison {
        parameter: "shared_kib",
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exp() -> Experiment {
        Experiment::new().with_runs(3)
    }

    #[test]
    fn fig4_grid_shape() {
        let g = fig4(&exp(), &[InputSize::Tiny]);
        assert_eq!(g.rows().len(), 7 * 5);
        assert!(g.mean_cv("vector_seq", InputSize::Tiny) >= 0.0);
        assert!(g.to_table().len() == 35);
    }

    #[test]
    fn fig5_table_has_geomean() {
        let g = fig4(&exp(), &[InputSize::Tiny]);
        let t = fig5(&g, &[InputSize::Tiny]);
        assert!(t.to_string().contains("geo-mean"));
    }

    #[test]
    fn fig7_covers_micro_suite() {
        let s = fig7(&exp(), InputSize::Tiny);
        assert_eq!(s.comparisons().len(), 7);
        assert!(s.workload("gemm").is_some());
        assert!((s.geomean_normalized(TransferMode::Standard) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn irregular_covers_the_trio() {
        let s = irregular(&exp(), InputSize::Tiny);
        assert_eq!(s.comparisons().len(), 3);
        for name in IRREGULAR_WORKLOADS {
            assert!(s.workload(name).is_some(), "{name} missing");
        }
        assert!((s.geomean_normalized(TransferMode::Standard) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fig9_rows_cover_modes() {
        let c = fig9_fig10(&exp(), InputSize::Tiny);
        assert_eq!(c.rows().len(), 3 * 5);
        let gemm_async = c.row("gemm", TransferMode::Async).unwrap();
        let gemm_std = c.row("gemm", TransferMode::Standard).unwrap();
        assert!(gemm_async.control > gemm_std.control);
    }

    #[test]
    fn fig11_normalization_reference() {
        let s = fig11(&exp(), InputSize::Tiny);
        assert!((s.normalized(4096, TransferMode::Standard) - 1.0).abs() < 1e-9);
        assert_eq!(s.points().len(), 9);
    }

    #[test]
    fn fig13_sweeps_carveouts() {
        let s = fig13(&exp(), InputSize::Tiny);
        assert_eq!(s.points().len(), 7);
        assert_eq!(s.points()[0].0, 2);
        assert_eq!(s.points()[6].0, 128);
    }
}
