//! A zero-dependency parallel executor for embarrassingly parallel grids.
//!
//! Every paper figure is a `workload × mode (× size)` grid of fully
//! independent, deterministic simulations. [`run`] fans such a grid over a
//! scoped thread pool (`std::thread::scope` — no spawned-thread lifetime
//! issues, no unsafe) with a shared atomic work-queue index, and returns
//! results in **index order**: element `i` of the output is the result of
//! calling the job function on index `i`, exactly as a serial `for` loop
//! would produce, regardless of how the indices were scheduled across
//! workers.
//!
//! # Thread-count resolution
//!
//! The worker count is resolved, in priority order, from:
//!
//! 1. a process-wide override set by [`set_threads`] (the CLI's
//!    `--threads N` flag);
//! 2. the `HETSIM_THREADS` environment variable;
//! 3. [`std::thread::available_parallelism`].
//!
//! At `threads = 1` the executor degrades to a plain serial loop on the
//! calling thread — no threads are spawned at all. Nested [`run`] calls
//! from inside a worker likewise run serially, so a parallel grid whose
//! jobs themselves contain parallel sub-grids cannot oversubscribe the
//! machine `T × T`-fold.
//!
//! # Determinism
//!
//! The executor adds no nondeterminism of its own: jobs receive only their
//! index, and outputs are re-assembled by index after the join. Callers
//! that record traces must give each job its own thread-local trace
//! session and merge the finished [`hetsim_trace::Trace`]s in index order
//! after the join (see `Experiment::traced_modes`), because sessions do
//! not cross thread boundaries.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Process-wide thread-count override (`--threads N`). `0` = no override.
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Set while the current thread is executing jobs for a [`run`] call;
    /// nested `run`s then degrade to serial instead of spawning `T²`
    /// threads.
    static IN_POOL: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };

    /// The index of the job the current thread is executing, if any. Set
    /// identically on the serial and parallel paths so anything derived
    /// from it (trace labels) cannot depend on the thread count.
    static CURRENT_TASK: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

/// The index of the [`run`] job executing on the current thread, or
/// `None` outside a job. Instrumentation uses this to label events with
/// the job slot; it is maintained on the serial fallback path too, so the
/// label is a function of the work item, never of the scheduling.
pub fn current_task() -> Option<usize> {
    CURRENT_TASK.with(std::cell::Cell::get)
}

/// Runs one job closure with [`current_task`] set to `i`, restoring the
/// previous value afterwards (nested grids see their own index).
fn with_task<T>(i: usize, f: impl FnOnce(usize) -> T) -> T {
    let prev = CURRENT_TASK.with(|c| c.replace(Some(i)));
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            CURRENT_TASK.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(prev);
    f(i)
}

/// Sets (or with `None`, clears) the process-wide thread-count override.
/// A `Some(0)` is treated as no override.
pub fn set_threads(threads: Option<usize>) {
    OVERRIDE.store(threads.unwrap_or(0), Ordering::Relaxed);
}

/// The number of worker threads [`run`] will use, after applying the
/// resolution order documented at the module level.
pub fn configured_threads() -> usize {
    let forced = OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    if let Ok(v) = std::env::var("HETSIM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `f(0), f(1), …, f(n - 1)` across the configured worker threads
/// and returns the results **in index order**, byte-identical to the
/// serial loop `(0..n).map(f).collect()`.
///
/// Work is distributed dynamically: each worker repeatedly claims the
/// next unclaimed index from a shared atomic counter, so uneven job costs
/// (a Mega-size bfs next to a Small vector-add) still balance. Workers
/// collect `(index, result)` pairs and the parent assembles them into
/// index order after the join; scheduling order can never leak into the
/// output.
///
/// Runs serially on the calling thread when only one worker is
/// configured, when `n < 2`, or when called from inside another [`run`]
/// (nested parallelism degrades rather than oversubscribing).
///
/// # Panics
///
/// If a job panics, the panic is propagated to the caller after all
/// workers have stopped claiming new work.
pub fn run<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = configured_threads().min(n.max(1));
    if threads <= 1 || n < 2 || IN_POOL.with(|c| c.get()) {
        return (0..n).map(|i| with_task(i, &f)).collect();
    }

    let next = AtomicUsize::new(0);
    let mut buckets: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    IN_POOL.with(|c| c.set(true));
                    let mut mine = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        mine.push((i, with_task(i, &f)));
                    }
                    IN_POOL.with(|c| c.set(false));
                    mine
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(bucket) => bucket,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });

    // Assemble index-addressed slots: sort the (index, result) pairs back
    // into submission order. Total work is O(n log n) on trivially small n
    // (grid sizes, not simulation sizes).
    let mut flat: Vec<(usize, T)> = Vec::with_capacity(n);
    for bucket in &mut buckets {
        flat.append(bucket);
    }
    flat.sort_by_key(|&(i, _)| i);
    debug_assert_eq!(flat.len(), n);
    flat.into_iter().map(|(_, v)| v).collect()
}

/// Serializes tests (and any other caller) that need to pin the global
/// thread override: runs `f` with the override set to `threads`, then
/// restores the previous override, holding a process-wide lock for the
/// duration so concurrent `with_threads` calls cannot interleave.
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = LOCK
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    let prev = OVERRIDE.swap(threads, Ordering::Relaxed);
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.store(self.0, Ordering::Relaxed);
        }
    }
    let restore = Restore(prev);
    let out = f();
    drop(restore);
    drop(guard);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_order_matches_serial() {
        let serial: Vec<u64> = (0..97).map(|i| (i as u64) * 3 + 1).collect();
        let parallel = with_threads(4, || run(97, |i| (i as u64) * 3 + 1));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn serial_fallback_spawns_no_threads() {
        let main_id = std::thread::current().id();
        let ids = with_threads(1, || run(8, |_| std::thread::current().id()));
        assert!(ids.iter().all(|&id| id == main_id));
    }

    #[test]
    fn single_job_runs_inline() {
        let main_id = std::thread::current().id();
        let ids = with_threads(4, || run(1, |_| std::thread::current().id()));
        assert_eq!(ids, vec![main_id]);
    }

    #[test]
    fn empty_grid_yields_empty_vec() {
        let out: Vec<u32> = with_threads(4, || run(0, |_| unreachable!()));
        assert!(out.is_empty());
    }

    #[test]
    fn nested_runs_degrade_to_serial() {
        let out = with_threads(4, || {
            run(4, |i| {
                // Inner grid must run inline on this worker thread.
                let worker = std::thread::current().id();
                let inner = run(4, |j| (std::thread::current().id(), i * 10 + j));
                assert!(inner.iter().all(|&(id, _)| id == worker));
                inner.into_iter().map(|(_, v)| v).collect::<Vec<_>>()
            })
        });
        let expect: Vec<Vec<usize>> = (0..4)
            .map(|i| (0..4).map(|j| i * 10 + j).collect())
            .collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn current_task_tracks_job_index_on_both_paths() {
        assert_eq!(current_task(), None);
        let serial = with_threads(1, || run(5, |i| (i, current_task())));
        let parallel = with_threads(4, || run(5, |i| (i, current_task())));
        for (i, task) in &serial {
            assert_eq!(*task, Some(*i), "serial path sets the task index");
        }
        assert_eq!(serial, parallel, "thread count cannot leak into labels");
        assert_eq!(current_task(), None, "cleared after the grid");
    }

    #[test]
    fn override_beats_env() {
        with_threads(3, || assert_eq!(configured_threads(), 3));
    }

    #[test]
    fn uses_multiple_workers_when_configured() {
        // With 4 workers and jobs that wait for each other, at least two
        // distinct thread ids must appear.
        use std::sync::Barrier;
        let barrier = Barrier::new(2);
        let ids = with_threads(4, || {
            run(2, |_| {
                barrier.wait();
                std::thread::current().id()
            })
        });
        assert_ne!(ids[0], ids[1]);
    }
}
