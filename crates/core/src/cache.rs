//! On-disk content-addressed result cache for base runs.
//!
//! Figure grids, CI gates, and calibration loops re-simulate the same
//! `(workload, mode, device)` cells on every invocation. This module makes
//! repeated sweeps incremental: each deterministic base-run result is stored
//! once under `target/hetsim-cache/` keyed on the program's structural
//! fingerprint ([`hetsim_runtime::GpuProgram::memo_key`]), the transfer
//! mode, a cost-model
//! fingerprint of the [`Device`], and the crate version. A warm rerun reads
//! every cell back instead of simulating it.
//!
//! # Store layout
//!
//! One file per entry under `<root>/v1/<fnv64-of-key>.entry`, where `v1` is
//! the record format version ([`FORMAT_VERSION`]) — a codec change bumps the
//! directory and orphans old entries rather than misreading them. Each
//! entry is a line-record file: a header line, the *full* cache key, then
//! `field=value` lines for every component and counter of the
//! [`RunReport`]. The hash only addresses the file; the stored key is
//! compared byte-for-byte on load, so a hash collision degrades to a miss,
//! never to a wrong result.
//!
//! Timing fields are exact nanosecond integers and the two occupancy
//! fractions are stored as IEEE-754 bit patterns, so a loaded report is
//! bit-identical to the simulated one — warm and cold sweeps print
//! byte-identical reports, which the CI cache gate asserts.
//!
//! # Atomicity
//!
//! Writes go to a temp file in the same directory followed by an atomic
//! rename, so concurrent processes sharing a cache directory see either no
//! entry or a complete one. Corrupt or truncated entries (e.g. from a
//! killed process using a non-atomic filesystem) are treated as misses and
//! overwritten by the next store.
//!
//! # Enabling
//!
//! The cache is opt-in. The CLI resolves, in order: the `--cache` flag
//! (`off`, `on` = default root, or a directory path), then the
//! `HETSIM_CACHE` environment variable with the same grammar
//! ([`resolve_choice`]). Library users attach a cache with
//! [`Experiment::with_cache`](crate::Experiment::with_cache).

use hetsim_counters::uvm::BATCH_FILL_BUCKETS;
use hetsim_counters::{
    CacheCounters, CounterSet, InstClass, InstructionMix, Occupancy, TransferCounters, UvmCounters,
};
use hetsim_engine::time::Nanos;
use hetsim_runtime::{Device, RunReport, TransferMode};
use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Version of the on-disk record format; also the store subdirectory name
/// (`v1`). Bump when the entry codec changes shape.
pub const FORMAT_VERSION: u32 = 1;

const HEADER: &str = "hetsim-cache 1";
const ENTRY_EXT: &str = "entry";

/// The full identity of one cached base run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheKey {
    /// The program's structural fingerprint (`GpuProgram::memo_key`).
    pub memo_key: String,
    /// The transfer mode simulated.
    pub mode: TransferMode,
    /// Fingerprint of the device's cost model ([`device_fingerprint`]).
    pub device_hash: u64,
}

impl CacheKey {
    /// Builds a key for `(program fingerprint, mode)` on a device.
    pub fn new(memo_key: &str, mode: TransferMode, device_hash: u64) -> Self {
        CacheKey {
            memo_key: memo_key.to_string(),
            mode,
            device_hash,
        }
    }

    /// The canonical single-line form stored inside the entry and hashed
    /// for the file name: device hash × crate version × mode × memo key.
    pub fn line(&self) -> String {
        format!(
            "dev={:016x} crate={} mode={} {}",
            self.device_hash,
            env!("CARGO_PKG_VERSION"),
            self.mode.name(),
            self.memo_key.replace('\n', " ")
        )
    }
}

/// Fingerprints a device's complete cost model. Uses the `Debug` rendering,
/// which prints every calibration knob (f64s in shortest-round-trip form),
/// so any knob change produces a different fingerprint and invalidates the
/// device's cache entries.
pub fn device_fingerprint(device: &Device) -> u64 {
    fnv1a(format!("{device:?}").as_bytes())
}

/// Hit/miss/store counters for one [`DiskCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Entries served from disk.
    pub hits: u64,
    /// Lookups that found no usable entry.
    pub misses: u64,
    /// Entries written.
    pub stores: u64,
    /// I/O failures and corrupt entries encountered (each also counted as
    /// a miss or a failed store — the cache is best-effort and never fails
    /// a run).
    pub errors: u64,
}

/// Aggregate of an on-disk store, for `cache stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheScan {
    /// Number of entry files present.
    pub entries: u64,
    /// Total bytes they occupy.
    pub bytes: u64,
}

/// The on-disk result store. Cheap to construct — no I/O happens until the
/// first load or store.
#[derive(Debug)]
pub struct DiskCache {
    root: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    errors: AtomicU64,
}

impl DiskCache {
    /// A cache rooted at `root` (the version subdirectory is appended
    /// internally).
    pub fn at(root: impl Into<PathBuf>) -> Self {
        DiskCache {
            root: root.into(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            errors: AtomicU64::new(0),
        }
    }

    /// The conventional default root, `target/hetsim-cache` under the
    /// current directory.
    pub fn default_root() -> PathBuf {
        PathBuf::from("target").join("hetsim-cache")
    }

    /// The configured root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn version_dir(&self) -> PathBuf {
        self.root.join(format!("v{FORMAT_VERSION}"))
    }

    fn entry_path(&self, key_line: &str) -> PathBuf {
        self.version_dir()
            .join(format!("{:016x}.{ENTRY_EXT}", fnv1a(key_line.as_bytes())))
    }

    /// Looks up a base run. Returns `None` on any miss: absent entry,
    /// key mismatch (hash collision), or corrupt record.
    pub fn load(&self, key: &CacheKey) -> Option<RunReport> {
        let key_line = key.line();
        let text = match fs::read_to_string(self.entry_path(&key_line)) {
            Ok(t) => t,
            Err(_) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match decode(&key_line, &text) {
            Some(report) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(report)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.errors.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Writes a base run, atomically (temp file + rename). Best-effort: an
    /// I/O failure is counted in [`CacheStats::errors`] and otherwise
    /// ignored — a broken cache directory must never fail a sweep.
    pub fn store(&self, key: &CacheKey, report: &RunReport) {
        let key_line = key.line();
        match self.store_inner(&key_line, report) {
            Ok(()) => {
                self.stores.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn store_inner(&self, key_line: &str, report: &RunReport) -> io::Result<()> {
        let dir = self.version_dir();
        fs::create_dir_all(&dir)?;
        let path = self.entry_path(key_line);
        let tmp = dir.join(format!(
            ".tmp-{:016x}-{}",
            fnv1a(key_line.as_bytes()),
            std::process::id()
        ));
        fs::write(&tmp, encode(key_line, report))?;
        fs::rename(&tmp, &path)
    }

    /// Counter snapshot for this process's use of the cache.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
        }
    }

    /// Walks the store and reports entry count and size (for
    /// `cache stats`). An absent directory is an empty cache.
    ///
    /// # Errors
    ///
    /// Propagates directory-read failures other than `NotFound`.
    pub fn scan(&self) -> io::Result<CacheScan> {
        let mut scan = CacheScan::default();
        let dir = self.version_dir();
        let entries = match fs::read_dir(&dir) {
            Ok(e) => e,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(scan),
            Err(e) => return Err(e),
        };
        for entry in entries {
            let entry = entry?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) == Some(ENTRY_EXT) {
                scan.entries += 1;
                scan.bytes += entry.metadata()?.len();
            }
        }
        Ok(scan)
    }

    /// Deletes the store (all format versions under the root). Returns the
    /// number of entry files removed; an absent root removes zero.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures other than `NotFound`.
    pub fn clear(&self) -> io::Result<u64> {
        let removed = match self.scan() {
            Ok(scan) => scan.entries,
            Err(_) => 0,
        };
        match fs::remove_dir_all(&self.root) {
            Ok(()) => Ok(removed),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(0),
            Err(e) => Err(e),
        }
    }
}

/// How a run was asked to use the disk cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheChoice {
    /// No disk cache (the default).
    Disabled,
    /// Cache rooted at this directory.
    Dir(PathBuf),
}

/// Resolves the cache knob. `flag` is the `--cache` value when given;
/// otherwise the `HETSIM_CACHE` environment variable is consulted. Both use
/// the same grammar: `off`/`0`/`none`/empty disable, `on`/`1` select
/// [`DiskCache::default_root`], anything else is a root directory path.
pub fn resolve_choice(flag: Option<&str>) -> CacheChoice {
    let value = match flag {
        Some(v) => v.to_string(),
        None => std::env::var("HETSIM_CACHE").unwrap_or_default(),
    };
    match value.as_str() {
        "" | "off" | "0" | "none" => CacheChoice::Disabled,
        "on" | "1" => CacheChoice::Dir(DiskCache::default_root()),
        dir => CacheChoice::Dir(PathBuf::from(dir)),
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn encode(key_line: &str, r: &RunReport) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str(HEADER);
    out.push('\n');
    out.push_str("key=");
    out.push_str(key_line);
    out.push('\n');
    let mut put = |name: &str, value: u64| {
        out.push_str(name);
        out.push('=');
        out.push_str(&value.to_string());
        out.push('\n');
    };
    put("alloc", r.alloc.as_nanos());
    put("memcpy", r.memcpy.as_nanos());
    put("kernel", r.kernel.as_nanos());
    put("system", r.system.as_nanos());
    for class in InstClass::ALL {
        put(
            &format!("inst.{}", class.name()),
            r.counters.inst.get(class),
        );
    }
    for (prefix, c) in [("l1", &r.counters.l1), ("l2", &r.counters.l2)] {
        put(&format!("{prefix}.load_hits"), c.load_hits());
        put(&format!("{prefix}.load_misses"), c.load_misses());
        put(&format!("{prefix}.store_hits"), c.store_hits());
        put(&format!("{prefix}.store_misses"), c.store_misses());
    }
    let t = &r.counters.transfer;
    put("tr.h2d_bytes", t.h2d_bytes());
    put("tr.d2h_bytes", t.d2h_bytes());
    put("tr.h2d_time", t.h2d_time().as_nanos());
    put("tr.d2h_time", t.d2h_time().as_nanos());
    put("tr.explicit_copies", t.explicit_copies());
    put("tr.migrations", t.migrations());
    put("tr.prefetch_ops", t.prefetch_ops());
    let u = &r.counters.uvm;
    put("uvm.page_faults", u.page_faults());
    put("uvm.fault_batches", u.fault_batches());
    put("uvm.pages_migrated", u.pages_migrated());
    put("uvm.pages_prefetched", u.pages_prefetched());
    put("uvm.pages_heuristic", u.pages_heuristic());
    put("uvm.pages_evicted", u.pages_evicted());
    put("uvm.refaults", u.refaults());
    put("uvm.fault_stall", u.fault_stall().as_nanos());
    for (i, count) in u.batch_fill_histogram().iter().enumerate() {
        put(&format!("uvm.fill{i}"), *count);
    }
    put("uvm.fill_batches", u.fill_batches());
    put("uvm.fill_faults", u.fill_faults());
    // Occupancy fractions as IEEE-754 bit patterns: exact round-trip.
    put(
        "occ.theoretical_bits",
        r.counters.occupancy.theoretical().to_bits(),
    );
    put(
        "occ.achieved_bits",
        r.counters.occupancy.achieved().to_bits(),
    );
    out
}

fn decode(expected_key: &str, text: &str) -> Option<RunReport> {
    let mut lines = text.lines();
    if lines.next()? != HEADER {
        return None;
    }
    if lines.next()?.strip_prefix("key=")? != expected_key {
        return None;
    }
    let mut fields: HashMap<&str, u64> = HashMap::new();
    for line in lines {
        let (name, value) = line.split_once('=')?;
        fields.insert(name, value.parse().ok()?);
    }
    let get = |name: &str| fields.get(name).copied();
    let mut inst = InstructionMix::new();
    for class in InstClass::ALL {
        inst.record(class, get(&format!("inst.{}", class.name()))?);
    }
    let cache_counters = |prefix: &str| -> Option<CacheCounters> {
        Some(CacheCounters::from_parts(
            get(&format!("{prefix}.load_hits"))?,
            get(&format!("{prefix}.load_misses"))?,
            get(&format!("{prefix}.store_hits"))?,
            get(&format!("{prefix}.store_misses"))?,
        ))
    };
    let transfer = TransferCounters::from_parts(
        get("tr.h2d_bytes")?,
        get("tr.d2h_bytes")?,
        Nanos::from_nanos(get("tr.h2d_time")?),
        Nanos::from_nanos(get("tr.d2h_time")?),
        get("tr.explicit_copies")?,
        get("tr.migrations")?,
        get("tr.prefetch_ops")?,
    );
    let mut batch_fill = [0u64; BATCH_FILL_BUCKETS];
    for (i, slot) in batch_fill.iter_mut().enumerate() {
        *slot = get(&format!("uvm.fill{i}"))?;
    }
    let uvm = UvmCounters::from_parts(
        get("uvm.page_faults")?,
        get("uvm.fault_batches")?,
        get("uvm.pages_migrated")?,
        get("uvm.pages_prefetched")?,
        get("uvm.pages_heuristic")?,
        get("uvm.pages_evicted")?,
        get("uvm.refaults")?,
        Nanos::from_nanos(get("uvm.fault_stall")?),
        batch_fill,
        get("uvm.fill_batches")?,
        get("uvm.fill_faults")?,
    );
    let occupancy = Occupancy::new(
        f64::from_bits(get("occ.theoretical_bits")?),
        f64::from_bits(get("occ.achieved_bits")?),
    );
    Some(RunReport {
        alloc: Nanos::from_nanos(get("alloc")?),
        memcpy: Nanos::from_nanos(get("memcpy")?),
        kernel: Nanos::from_nanos(get("kernel")?),
        system: Nanos::from_nanos(get("system")?),
        counters: CounterSet {
            inst,
            l1: cache_counters("l1")?,
            l2: cache_counters("l2")?,
            transfer,
            uvm,
            occupancy,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

    fn scratch_dir(tag: &str) -> PathBuf {
        let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "hetsim-cache-test-{}-{tag}-{n}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn rich_report() -> RunReport {
        let mut inst = InstructionMix::new();
        inst.record(InstClass::MemLoad, 11);
        inst.record(InstClass::Control, 7);
        let mut l1 = CacheCounters::new();
        l1.record_load(true);
        l1.record_store(false);
        let mut transfer = TransferCounters::new();
        transfer.record_migration(4096, Nanos::from_micros(5));
        transfer.record_prefetch(1 << 20, Nanos::from_micros(60));
        let mut uvm = UvmCounters::new();
        uvm.record_fault_batch(200, Nanos::from_micros(38));
        uvm.record_batch_fill(3);
        uvm.record_batch_fill(256);
        uvm.record_refaults(2);
        uvm.record_evicted_pages(9);
        RunReport {
            alloc: Nanos::from_nanos(123_456_789),
            memcpy: Nanos::from_nanos(987),
            kernel: Nanos::from_nanos(42),
            system: Nanos::from_millis(2),
            counters: CounterSet {
                inst,
                l1,
                l2: CacheCounters::from_parts(5, 6, 7, 8),
                transfer,
                uvm,
                occupancy: Occupancy::new(0.333_333_333_333_333_3, 0.377_9),
            },
        }
    }

    fn key() -> CacheKey {
        CacheKey::new("saxpy|pc=0|b:x:1024|k:main", TransferMode::Uvm, 0xdead_beef)
    }

    #[test]
    fn roundtrip_is_exact() {
        let cache = DiskCache::at(scratch_dir("roundtrip"));
        let report = rich_report();
        assert_eq!(cache.load(&key()), None);
        cache.store(&key(), &report);
        let loaded = cache.load(&key()).expect("entry present");
        assert_eq!(loaded, report);
        assert_eq!(
            loaded.counters.occupancy.theoretical().to_bits(),
            report.counters.occupancy.theoretical().to_bits()
        );
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.stores), (1, 1, 1));
        let _ = cache.clear();
    }

    #[test]
    fn key_mismatch_is_a_miss() {
        let dir = scratch_dir("mismatch");
        let cache = DiskCache::at(&dir);
        cache.store(&key(), &rich_report());
        // Same file name cannot happen for a different key without a hash
        // collision, so simulate one by rewriting the stored entry's key.
        let entry = cache.entry_path(&key().line());
        let text = fs::read_to_string(&entry).unwrap();
        let forged = text.replace("mode=uvm", "mode=standard");
        fs::write(&entry, forged).unwrap();
        assert_eq!(cache.load(&key()), None);
        assert_eq!(cache.stats().errors, 1);
        let _ = cache.clear();
    }

    #[test]
    fn corrupt_entry_is_a_miss() {
        let dir = scratch_dir("corrupt");
        let cache = DiskCache::at(&dir);
        cache.store(&key(), &rich_report());
        let entry = cache.entry_path(&key().line());
        fs::write(&entry, "hetsim-cache 1\nkey=garbage\n").unwrap();
        assert_eq!(cache.load(&key()), None);
        // A fresh store repairs the entry.
        cache.store(&key(), &rich_report());
        assert!(cache.load(&key()).is_some());
        let _ = cache.clear();
    }

    #[test]
    fn stats_and_clear_on_nonexistent_directory() {
        // `cache stats` / `cache clear` on a root that was never created:
        // both succeed and report an empty store, and neither creates the
        // directory as a side effect.
        let dir = scratch_dir("nonexistent");
        let cache = DiskCache::at(&dir);
        assert!(!dir.exists());
        assert_eq!(cache.scan().unwrap(), CacheScan::default());
        assert_eq!(cache.clear().unwrap(), 0);
        assert!(!dir.exists(), "inspection must not create the store");
        let stats = cache.stats();
        assert_eq!(
            (stats.hits, stats.misses, stats.stores, stats.errors),
            (0, 0, 0, 0)
        );
    }

    #[test]
    fn corrupt_entry_counts_an_error_and_next_store_overwrites() {
        let dir = scratch_dir("corrupt-counters");
        let cache = DiskCache::at(&dir);
        let report = rich_report();
        cache.store(&key(), &report);
        let entry = cache.entry_path(&key().line());
        fs::write(&entry, "not a cache record at all").unwrap();
        // The corrupt read is both a miss and an error.
        assert_eq!(cache.load(&key()), None);
        let stats = cache.stats();
        assert_eq!((stats.misses, stats.errors), (1, 1));
        // The next store overwrites the corrupt file in place and the
        // entry round-trips again; the error count stays historical.
        cache.store(&key(), &report);
        assert_eq!(cache.load(&key()), Some(report));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.stores, stats.errors), (1, 2, 1));
        let _ = cache.clear();
    }

    #[test]
    fn scan_and_clear() {
        let cache = DiskCache::at(scratch_dir("scan"));
        assert_eq!(cache.scan().unwrap(), CacheScan::default());
        cache.store(&key(), &rich_report());
        cache.store(
            &CacheKey::new("other", TransferMode::Async, 1),
            &RunReport::default(),
        );
        let scan = cache.scan().unwrap();
        assert_eq!(scan.entries, 2);
        assert!(scan.bytes > 0);
        assert_eq!(cache.clear().unwrap(), 2);
        assert_eq!(cache.scan().unwrap().entries, 0);
        assert_eq!(cache.clear().unwrap(), 0);
    }

    #[test]
    fn device_fingerprint_tracks_knobs() {
        let base = Device::a100_epyc();
        let mut tweaked = base.clone();
        tweaked.name = "tweaked";
        assert_ne!(device_fingerprint(&base), device_fingerprint(&tweaked));
        assert_eq!(
            device_fingerprint(&base),
            device_fingerprint(&Device::a100_epyc())
        );
    }

    #[test]
    fn choice_resolution_grammar() {
        assert_eq!(resolve_choice(Some("off")), CacheChoice::Disabled);
        assert_eq!(resolve_choice(Some("0")), CacheChoice::Disabled);
        assert_eq!(resolve_choice(Some("none")), CacheChoice::Disabled);
        assert_eq!(
            resolve_choice(Some("on")),
            CacheChoice::Dir(DiskCache::default_root())
        );
        assert_eq!(
            resolve_choice(Some("1")),
            CacheChoice::Dir(DiskCache::default_root())
        );
        assert_eq!(
            resolve_choice(Some("/tmp/somewhere")),
            CacheChoice::Dir(PathBuf::from("/tmp/somewhere"))
        );
    }

    #[test]
    fn different_modes_use_different_entries() {
        let cache = DiskCache::at(scratch_dir("modes"));
        let report = rich_report();
        cache.store(&key(), &report);
        let other = CacheKey::new(&key().memo_key, TransferMode::Standard, key().device_hash);
        assert_eq!(cache.load(&other), None);
        let _ = cache.clear();
    }
}
