//! Spec verification before simulation: the sweep-side wiring of
//! [`hetsim_sanitizer`].
//!
//! Sweeps burn real compute; a mis-specified workload description burns it
//! on numbers that look plausible and are silently wrong (wrapped chunk
//! indices, dropped Scratch touches, outputs that never write back). The
//! CLI's `--verify-specs` flag calls [`enforce`] before any run so a dirty
//! spec fails fast with the full diagnostic text instead.

use hetsim_runtime::Device;
use hetsim_sanitizer::{CheckConfig, ModeAdvice, PerfConfig, Report};
use hetsim_workloads::suite;
use hetsim_workloads::InputSize;

/// Checks one program with the default [`CheckConfig`].
pub fn check_program(program: &dyn hetsim_runtime::GpuProgram) -> Report {
    hetsim_sanitizer::check_program(program, &CheckConfig::default())
}

/// Runs the static performance advisor on one program with the default
/// [`PerfConfig`] (see [`hetsim_sanitizer::advise`]).
pub fn advise_program(program: &dyn hetsim_runtime::GpuProgram, device: &Device) -> ModeAdvice {
    hetsim_sanitizer::advise(program, device, &PerfConfig::default())
}

/// Advises every registered workload at `size` on `device`, in registry
/// order.
pub fn advise_registry(size: InputSize, device: &Device) -> Vec<ModeAdvice> {
    let cfg = PerfConfig::default();
    suite::all_entries()
        .iter()
        .map(|entry| {
            let w = (entry.build)(size);
            hetsim_sanitizer::advise(&w, device, &cfg)
        })
        .collect()
}

/// Checks every registered workload (micro + apps + irregular) at `size`,
/// returning the merged report in registry order.
pub fn check_registry(size: InputSize) -> Report {
    let cfg = CheckConfig::default();
    let mut merged = Report::new();
    for entry in suite::all_entries() {
        let w = (entry.build)(size);
        merged.merge(hetsim_sanitizer::check_program(&w, &cfg));
    }
    merged
}

/// Validates a chaos fault plan against its recovery policy, so
/// impossible plans (a nonzero fault rate with a zero retry budget, an
/// out-of-range probability) are rejected before any sweep starts rather
/// than failing its first cell.
///
/// # Errors
///
/// Returns the rendered [`SimError::InvalidPlan`] message.
///
/// [`SimError::InvalidPlan`]: hetsim_runtime::SimError::InvalidPlan
pub fn check_plan(
    plan: &hetsim_runtime::FaultPlan,
    policy: &hetsim_runtime::RecoveryPolicy,
) -> Result<(), String> {
    plan.validate(policy).map_err(|e| e.to_string())
}

/// Turns a dirty report into an error whose message carries the rendered
/// diagnostics; clean reports pass through.
///
/// # Errors
///
/// Returns the report's text rendering when
/// [`Report::is_clean`]`(deny_warnings)` is false.
pub fn enforce(report: &Report, deny_warnings: bool) -> Result<(), String> {
    if report.is_clean(deny_warnings) {
        Ok(())
    } else {
        Err(format!("spec verification failed\n{}", report.to_text()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_clean_and_enforce_passes() {
        let r = check_registry(InputSize::Tiny);
        assert!(r.is_clean(true), "{}", r.to_text());
        assert!(enforce(&r, true).is_ok());
    }

    #[test]
    fn enforce_surfaces_diagnostics() {
        use hetsim_sanitizer::{Diagnostic, Lint, Span};
        let mut r = Report::new();
        r.push(Diagnostic::new(
            Lint::ScratchTouched,
            "w",
            Span::Workload,
            "touches scratch",
            "stop",
        ));
        assert!(enforce(&r, false).is_ok(), "warnings pass by default");
        let err = enforce(&r, true).unwrap_err();
        assert!(err.contains("SAN-T003"), "{err}");
        assert!(err.contains("spec verification failed"));
    }
}
