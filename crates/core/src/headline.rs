//! The paper's §4 headline aggregates and §6 shares.
//!
//! These are the numbers the abstract and discussion quote: geo-mean
//! performance gains per mode, memcpy-time savings, kernel-time overheads,
//! the breakdown share shift once UVM + Async Memcpy are enabled, and the
//! achieved-occupancy improvement.

use crate::figures::SuiteComparison;
use hetsim_counters::report::Table;
use hetsim_engine::stats::geomean;
use hetsim_engine::time::Nanos;
use hetsim_runtime::report::Component;
use hetsim_runtime::TransferMode;

/// Aggregate per-mode statistics over a suite comparison.
#[derive(Debug, Clone)]
pub struct Headline {
    rows: Vec<HeadlineRow>,
}

/// One mode's aggregates.
#[derive(Debug, Clone)]
pub struct HeadlineRow {
    /// The mode.
    pub mode: TransferMode,
    /// Geo-mean percent improvement of overall time vs standard
    /// (positive = faster).
    pub improvement_pct: f64,
    /// Geo-mean percent memcpy-time savings vs standard.
    pub memcpy_savings_pct: f64,
    /// Geo-mean percent extra kernel time vs standard (positive = more
    /// kernel time).
    pub kernel_overhead_pct: f64,
}

impl Headline {
    /// Computes the aggregates from a suite comparison.
    pub fn from_suite(suite: &SuiteComparison) -> Self {
        let rows = TransferMode::ALL
            .map(|mode| {
                let memcpy_ratio: Vec<f64> = suite
                    .comparisons()
                    .iter()
                    .map(|c| {
                        ratio(
                            c.mean(mode).component(Component::Memcpy),
                            c.mean(TransferMode::Standard).component(Component::Memcpy),
                        )
                    })
                    .collect();
                let kernel_ratio: Vec<f64> = suite
                    .comparisons()
                    .iter()
                    .map(|c| {
                        ratio(
                            c.mean(mode).component(Component::Kernel),
                            c.mean(TransferMode::Standard).component(Component::Kernel),
                        )
                    })
                    .collect();
                HeadlineRow {
                    mode,
                    improvement_pct: suite.geomean_improvement_pct(mode),
                    memcpy_savings_pct: (1.0 - geomean(&memcpy_ratio)) * 100.0,
                    kernel_overhead_pct: (geomean(&kernel_ratio) - 1.0) * 100.0,
                }
            })
            .to_vec();
        Headline { rows }
    }

    /// One mode's row.
    pub fn row(&self, mode: TransferMode) -> &HeadlineRow {
        self.rows
            .iter()
            .find(|r| r.mode == mode)
            .expect("all modes present")
    }

    /// The rows.
    pub fn rows(&self) -> &[HeadlineRow] {
        &self.rows
    }

    /// Renders the aggregates.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(vec![
            "mode",
            "overall_improvement",
            "memcpy_savings",
            "kernel_overhead",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.mode.name().to_string(),
                format!("{:+.2}%", r.improvement_pct),
                format!("{:+.2}%", r.memcpy_savings_pct),
                format!("{:+.2}%", r.kernel_overhead_pct),
            ]);
        }
        t
    }
}

fn ratio(new: Nanos, base: Nanos) -> f64 {
    if base.is_zero() {
        1.0
    } else {
        new.as_nanos() as f64 / base.as_nanos() as f64
    }
}

/// The §6 quantities: breakdown shares and achieved occupancy, averaged
/// over a suite, for `standard` vs `uvm_prefetch_async`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Section6 {
    /// Mean memcpy share of the breakdown under standard.
    pub memcpy_share_standard: f64,
    /// Mean memcpy share under uvm_prefetch_async.
    pub memcpy_share_pfa: f64,
    /// Mean allocation share under standard.
    pub alloc_share_standard: f64,
    /// Mean allocation share under uvm_prefetch_async.
    pub alloc_share_pfa: f64,
}

impl Section6 {
    /// Computes the shares from a suite comparison.
    pub fn from_suite(suite: &SuiteComparison) -> Self {
        let share = |mode: TransferMode, c: Component| -> f64 {
            let shares: Vec<f64> = suite
                .comparisons()
                .iter()
                .map(|cmp| {
                    let m = cmp.mean(mode);
                    let total = m.breakdown_total().as_nanos() as f64;
                    if total == 0.0 {
                        0.0
                    } else {
                        m.component(c).as_nanos() as f64 / total
                    }
                })
                .collect();
            shares.iter().sum::<f64>() / shares.len().max(1) as f64
        };
        Section6 {
            memcpy_share_standard: share(TransferMode::Standard, Component::Memcpy),
            memcpy_share_pfa: share(TransferMode::UvmPrefetchAsync, Component::Memcpy),
            alloc_share_standard: share(TransferMode::Standard, Component::Alloc),
            alloc_share_pfa: share(TransferMode::UvmPrefetchAsync, Component::Alloc),
        }
    }

    /// Renders the share shift.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(vec!["share", "standard", "uvm_prefetch_async"]);
        t.row(vec![
            "memcpy".into(),
            format!("{:.2}%", self.memcpy_share_standard * 100.0),
            format!("{:.2}%", self.memcpy_share_pfa * 100.0),
        ]);
        t.row(vec![
            "allocation".into(),
            format!("{:.2}%", self.alloc_share_standard * 100.0),
            format!("{:.2}%", self.alloc_share_pfa * 100.0),
        ]);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Experiment;
    use crate::figures::fig8_at;
    use hetsim_workloads::InputSize;

    #[test]
    fn headline_standard_is_neutral() {
        let exp = Experiment::new().with_runs(2);
        let suite = fig8_at(&exp, InputSize::Tiny);
        let h = Headline::from_suite(&suite);
        let std = h.row(TransferMode::Standard);
        assert!(std.improvement_pct.abs() < 1e-9);
        assert!(std.memcpy_savings_pct.abs() < 1e-9);
        assert!(std.kernel_overhead_pct.abs() < 1e-9);
        assert_eq!(h.rows().len(), 5);
    }

    #[test]
    fn section6_shares_are_fractions() {
        let exp = Experiment::new().with_runs(2);
        let suite = fig8_at(&exp, InputSize::Tiny);
        let s = Section6::from_suite(&suite);
        for x in [
            s.memcpy_share_standard,
            s.memcpy_share_pfa,
            s.alloc_share_standard,
            s.alloc_share_pfa,
        ] {
            assert!((0.0..=1.0).contains(&x), "{x}");
        }
        assert!(s.to_table().to_string().contains("allocation"));
    }
}
