//! Degradation-curve sweeps: how gracefully each configuration sheds
//! performance as injected fault pressure rises.
//!
//! The chaos layer (`hetsim-chaos`) injects transient transfer failures,
//! kernel corruption, pinned-allocation failures, and UVM fault-storm
//! pressure at plan-controlled rates; recovery (retry, replay, fallback,
//! mode degradation) is paid in sim time. A [`ChaosSweep`] runs a grid of
//! `workloads × intensities × seeds` through [`Experiment::try_run`] and
//! reduces each cell to a point on the degradation curve: mean slowdown
//! over the fault-free baseline, how many runs degraded off the requested
//! mode, and how many exhausted their recovery budget entirely.
//!
//! Cells are simulated through [`pool::run`], and every reduction happens
//! in fixed grid-and-seed order after the join — so the rendered table and
//! JSON are byte-identical at any `HETSIM_THREADS`, which the CI chaos
//! gate asserts.

use crate::experiment::Experiment;
use crate::pool;
use hetsim_counters::report::Table;
use hetsim_runtime::{FaultPlan, GpuProgram, RecoveryPolicy, TransferMode};
use hetsim_workloads::{by_name, InputSize};

/// The grid a [`ChaosSweep`] runs.
#[derive(Debug, Clone)]
pub struct ChaosSweepConfig {
    /// Registry names of the workloads to sweep.
    pub workloads: Vec<String>,
    /// Input size every workload is built at.
    pub size: InputSize,
    /// The transfer mode every run requests (degradation may leave it).
    pub mode: TransferMode,
    /// Fault intensities, the `x` of [`FaultPlan::at_intensity`].
    pub rates: Vec<f64>,
    /// Seeds per cell (`seed`, `seed + 1`, …).
    pub seeds: u64,
    /// Base seed.
    pub seed: u64,
    /// Recovery policy shared by every run.
    pub policy: RecoveryPolicy,
}

impl Default for ChaosSweepConfig {
    /// The irregular trio plus one regular microbenchmark, at the mode
    /// with the longest degradation ladder, across a light-to-heavy
    /// intensity ramp.
    fn default() -> Self {
        ChaosSweepConfig {
            workloads: ["bfs", "kmeans", "pathfinder", "vector_seq"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            size: InputSize::Small,
            mode: TransferMode::UvmPrefetchAsync,
            rates: vec![0.0, 0.1, 0.25, 0.5, 0.75, 1.0],
            seeds: 8,
            seed: 42,
            policy: RecoveryPolicy::default(),
        }
    }
}

/// One `(workload, intensity)` point of the degradation curve, reduced
/// over the configured seeds.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosCell {
    /// Workload registry name.
    pub workload: String,
    /// Fault intensity of this cell.
    pub rate: f64,
    /// Runs that completed on the requested mode.
    pub ok: u64,
    /// Runs that completed but degraded to a lower mode.
    pub degraded: u64,
    /// Runs whose faults outlasted the recovery budget (typed errors).
    pub failed: u64,
    /// Mean `total / fault-free total` over completed runs (1.0 when no
    /// run completed).
    pub mean_slowdown: f64,
    /// Mean injected faults per completed run.
    pub mean_injected: f64,
    /// Mean share of the run total spent on recovery, over completed runs.
    pub mean_overhead_share: f64,
    /// Rendered messages of the failed runs, in seed order.
    pub errors: Vec<String>,
}

/// A completed degradation sweep: the grid plus its reduced cells, in
/// workload-major, intensity-minor order.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosSweep {
    /// The requested transfer mode.
    pub mode: TransferMode,
    /// Base seed.
    pub seed: u64,
    /// Seeds per cell.
    pub seeds: u64,
    /// The intensity ramp.
    pub rates: Vec<f64>,
    /// The reduced cells.
    pub cells: Vec<ChaosCell>,
}

impl ChaosSweep {
    /// Runs the sweep. Unknown workload names are skipped (the CLI
    /// validates names before calling).
    ///
    /// # Panics
    ///
    /// Panics if a resolved workload panics inside the runtime, which
    /// [`Experiment::try_run`] prevents for registry workloads.
    pub fn run(exp: &Experiment, cfg: &ChaosSweepConfig) -> ChaosSweep {
        let programs: Vec<_> = cfg
            .workloads
            .iter()
            .filter_map(|n| by_name(n, cfg.size))
            .collect();
        // Fault-free baselines first (memoized, shared across cells).
        let bases: Vec<f64> = programs
            .iter()
            .map(|p| exp.base_run(p, cfg.mode).total().as_nanos() as f64)
            .collect();

        let grid: Vec<(usize, f64)> = programs
            .iter()
            .enumerate()
            .flat_map(|(wi, _)| cfg.rates.iter().map(move |&r| (wi, r)))
            .collect();
        let cells = pool::run(grid.len(), |gi| {
            let (wi, rate) = grid[gi];
            let program = &programs[wi];
            let base = bases[wi];
            let mut cell = ChaosCell {
                workload: program.name().to_string(),
                rate,
                ok: 0,
                degraded: 0,
                failed: 0,
                mean_slowdown: 0.0,
                mean_injected: 0.0,
                mean_overhead_share: 0.0,
                errors: Vec::new(),
            };
            for s in 0..cfg.seeds {
                let plan = FaultPlan::at_intensity(cfg.seed + s, rate);
                let armed = exp.clone().with_chaos(plan, cfg.policy);
                match armed.try_run(program, cfg.mode) {
                    Ok(out) => {
                        if out.degraded() {
                            cell.degraded += 1;
                        } else {
                            cell.ok += 1;
                        }
                        let total = out.report.total().as_nanos() as f64;
                        cell.mean_slowdown += total / base;
                        cell.mean_injected += out.chaos.injected() as f64;
                        cell.mean_overhead_share +=
                            out.chaos.overhead.total().as_nanos() as f64 / total;
                    }
                    Err(e) => {
                        cell.failed += 1;
                        cell.errors.push(e.to_string());
                    }
                }
            }
            let completed = (cell.ok + cell.degraded) as f64;
            if completed > 0.0 {
                cell.mean_slowdown /= completed;
                cell.mean_injected /= completed;
                cell.mean_overhead_share /= completed;
            } else {
                cell.mean_slowdown = 1.0;
            }
            cell
        });

        ChaosSweep {
            mode: cfg.mode,
            seed: cfg.seed,
            seeds: cfg.seeds,
            rates: cfg.rates.clone(),
            cells,
        }
    }

    /// The workload names present in the sweep, in grid order.
    pub fn workloads(&self) -> Vec<&str> {
        let mut names: Vec<&str> = Vec::new();
        for c in &self.cells {
            if names.last() != Some(&c.workload.as_str()) {
                names.push(&c.workload);
            }
        }
        names
    }

    /// The degradation curve as a printable table, one row per cell.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(vec![
            "workload",
            "intensity",
            "ok",
            "degraded",
            "failed",
            "slowdown",
            "faults/run",
            "recovery share",
        ]);
        for c in &self.cells {
            t.row(vec![
                c.workload.clone(),
                format!("{:.2}", c.rate),
                c.ok.to_string(),
                c.degraded.to_string(),
                c.failed.to_string(),
                format!("{:.3}x", c.mean_slowdown),
                format!("{:.1}", c.mean_injected),
                format!("{:.1}%", c.mean_overhead_share * 100.0),
            ]);
        }
        t
    }

    /// The sweep as a self-contained JSON document (hand-rolled; the
    /// crate has no serialization dependency).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"mode\": \"{}\",\n", self.mode));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"seeds_per_cell\": {},\n", self.seeds));
        let rates: Vec<String> = self.rates.iter().map(|r| format!("{r:.4}")).collect();
        out.push_str(&format!("  \"rates\": [{}],\n", rates.join(", ")));
        out.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            let errors: Vec<String> = c.errors.iter().map(|e| json_string(e)).collect();
            out.push_str(&format!(
                "    {{\"workload\": {}, \"rate\": {:.4}, \"ok\": {}, \"degraded\": {}, \
                 \"failed\": {}, \"mean_slowdown\": {:.6}, \"mean_injected\": {:.3}, \
                 \"mean_overhead_share\": {:.6}, \"errors\": [{}]}}{}\n",
                json_string(&c.workload),
                c.rate,
                c.ok,
                c.degraded,
                c.failed,
                c.mean_slowdown,
                c.mean_injected,
                c.mean_overhead_share,
                errors.join(", "),
                if i + 1 < self.cells.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Minimal JSON string quoting (names and error messages only contain
/// printable ASCII, but quotes and backslashes must still escape).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ChaosSweepConfig {
        ChaosSweepConfig {
            workloads: vec!["vector_seq".into(), "bfs".into()],
            size: InputSize::Tiny,
            rates: vec![0.0, 0.5],
            seeds: 2,
            ..ChaosSweepConfig::default()
        }
    }

    #[test]
    fn zero_intensity_cells_are_clean() {
        let exp = Experiment::new().with_runs(1);
        let sweep = ChaosSweep::run(&exp, &tiny_cfg());
        assert_eq!(sweep.cells.len(), 4);
        for c in sweep.cells.iter().filter(|c| c.rate == 0.0) {
            assert_eq!(c.ok, 2, "{c:?}");
            assert_eq!(c.failed, 0);
            assert_eq!(c.degraded, 0);
            assert!((c.mean_slowdown - 1.0).abs() < 1e-12, "{c:?}");
            assert_eq!(c.mean_injected, 0.0);
        }
    }

    #[test]
    fn pressure_only_raises_the_curve() {
        let exp = Experiment::new().with_runs(1);
        let sweep = ChaosSweep::run(&exp, &tiny_cfg());
        for pair in sweep.cells.chunks(2) {
            // Completed runs at higher intensity are never faster than
            // the fault-free baseline.
            assert!(pair[1].mean_slowdown >= pair[0].mean_slowdown - 1e-12);
        }
    }

    #[test]
    fn sweep_is_deterministic_across_thread_counts() {
        let cfg = tiny_cfg();
        let run = || {
            let exp = Experiment::new().with_runs(1);
            ChaosSweep::run(&exp, &cfg)
        };
        let serial = pool::with_threads(1, run);
        let parallel = pool::with_threads(4, run);
        assert_eq!(serial, parallel);
        assert_eq!(serial.to_json(), parallel.to_json());
        assert_eq!(serial.to_table().to_csv(), parallel.to_table().to_csv());
    }

    #[test]
    fn json_escapes_quotes() {
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
    }
}
