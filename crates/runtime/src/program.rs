//! The [`GpuProgram`] trait: a complete application as the runtime sees it.

use hetsim_gpu::kernel::KernelModel;
use std::fmt;

/// How a buffer participates in the computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BufferRole {
    /// Host-initialized, read by kernels (transferred H2D).
    Input,
    /// Written by kernels, read by the host afterwards (transferred D2H).
    Output,
    /// Both (H2D before, D2H after).
    InOut,
    /// Device-only scratch (allocated, never transferred).
    Scratch,
}

impl BufferRole {
    /// Whether the host must ship this buffer to the device.
    pub fn is_input(self) -> bool {
        matches!(self, BufferRole::Input | BufferRole::InOut)
    }

    /// Whether results flow back to the host.
    pub fn is_output(self) -> bool {
        matches!(self, BufferRole::Output | BufferRole::InOut)
    }
}

/// One application buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BufferSpec {
    /// Name for reports.
    pub name: String,
    /// Size in bytes.
    pub bytes: u64,
    /// Transfer role.
    pub role: BufferRole,
}

/// Why a [`BufferSpec`] is invalid, from [`BufferSpec::try_new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BufferSpecError {
    /// The buffer has zero bytes.
    ZeroSize {
        /// Name of the offending buffer.
        name: String,
    },
    /// The buffer exceeds [`BufferSpec::MAX_BYTES`], so under the UVM
    /// address layout it would overlap the next buffer's base.
    Oversized {
        /// Name of the offending buffer.
        name: String,
        /// The requested size.
        bytes: u64,
    },
}

impl fmt::Display for BufferSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BufferSpecError::ZeroSize { name } => {
                write!(f, "buffer `{name}` must have non-zero size")
            }
            BufferSpecError::Oversized { name, bytes } => write!(
                f,
                "buffer `{name}` is {bytes} bytes, above the {} byte per-buffer limit",
                BufferSpec::MAX_BYTES
            ),
        }
    }
}

impl std::error::Error for BufferSpecError {}

impl BufferSpec {
    /// Largest representable buffer: the UVM run path lays buffers out at
    /// `4 TiB` spacing (base `(i + 1) << 42`), so anything larger would
    /// alias the next buffer's address range.
    pub const MAX_BYTES: u64 = 1 << 42;

    /// Creates a buffer spec, validating the size.
    ///
    /// # Errors
    ///
    /// Returns [`BufferSpecError`] if `bytes` is zero or exceeds
    /// [`BufferSpec::MAX_BYTES`].
    pub fn try_new<S: Into<String>>(
        name: S,
        bytes: u64,
        role: BufferRole,
    ) -> Result<Self, BufferSpecError> {
        let name = name.into();
        if bytes == 0 {
            return Err(BufferSpecError::ZeroSize { name });
        }
        if bytes > Self::MAX_BYTES {
            return Err(BufferSpecError::Oversized { name, bytes });
        }
        Ok(BufferSpec { name, bytes, role })
    }

    /// Creates a buffer spec.
    ///
    /// # Panics
    ///
    /// Panics if the size is invalid (see [`BufferSpec::try_new`]).
    pub fn new<S: Into<String>>(name: S, bytes: u64, role: BufferRole) -> Self {
        Self::try_new(name, bytes, role).unwrap_or_else(|e| panic!("{e}"))
    }
}

impl fmt::Display for BufferSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} bytes, {:?})", self.name, self.bytes, self.role)
    }
}

/// One access of a kernel's chunk-granular page-touch sequence, in
/// temporal order.
///
/// Produced by [`GpuProgram::page_touches`]; the runtime resolves the
/// buffer-relative chunk index against the buffer's base address and
/// replays the sequence through the UVM fault batcher, so the *order* of
/// touches — not just their footprint — decides batching, speculation,
/// and thrashing behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageTouch {
    /// Index into [`GpuProgram::buffers`].
    pub buffer: usize,
    /// Chunk index *within* that buffer (the runtime clamps it into the
    /// buffer's chunk count).
    pub chunk: u64,
    /// Whether the access writes (dirties the chunk).
    pub write: bool,
}

/// A complete GPU application: buffers plus an ordered kernel sequence.
///
/// Implemented by every workload in `hetsim-workloads`. The runtime derives
/// everything else — transfers, faults, prefetches, kernel styles — from
/// this description plus the chosen [`TransferMode`](crate::TransferMode).
///
/// `Sync` is a supertrait so a single program description can be shared by
/// reference across the worker threads of a parallel sweep (programs are
/// immutable data; all suite workloads satisfy this trivially).
pub trait GpuProgram: Sync {
    /// Program name (the paper's workload name).
    fn name(&self) -> &str;

    /// The program's buffers.
    fn buffers(&self) -> Vec<BufferSpec>;

    /// Kernels in launch order.
    fn kernels(&self) -> Vec<&dyn KernelModel>;

    /// Prefetch coverage multiplier in `[0, 1]` for multi-kernel programs
    /// whose kernels share data objects: prefetching for one kernel can
    /// displace what another needs (the paper's nw pathology). `1.0` means
    /// no conflict.
    fn prefetch_conflict(&self) -> f64 {
        1.0
    }

    /// Total bytes across all buffers (the paper's "memory footprint").
    fn footprint(&self) -> u64 {
        self.buffers().iter().map(|b| b.bytes).sum()
    }

    /// The chunk-granular page-touch sequence of `kernel`'s `invocation`-th
    /// launch, or `None` when the program has no temporal touch model (the
    /// runtime then falls back to address-ordered range touching) or the
    /// model stops producing rounds (later invocations re-touch resident
    /// data and add nothing).
    ///
    /// Implementations must be deterministic: the same
    /// `(kernel, invocation, chunk_size)` triple must always return the
    /// same sequence, so runs stay reproducible and tracing stays a pure
    /// observer.
    fn page_touches(
        &self,
        _kernel: usize,
        _invocation: u64,
        _chunk_size: u64,
    ) -> Option<Vec<PageTouch>> {
        None
    }

    /// A structural fingerprint suitable as a memoization key for base
    /// runs: two programs with the same `memo_key` produce the same
    /// `RunReport` under any given mode and device.
    ///
    /// The name alone is not enough — sensitivity sweeps build variants
    /// that share a name and footprint but differ in launch geometry
    /// (`vector_seq_custom` sweeps blocks and threads-per-block) — so the
    /// key also captures every buffer spec and every kernel's launch
    /// config, tile counts, arithmetic budget, access regularity, style,
    /// and invocation count, plus the program-level prefetch-conflict
    /// factor. `page_touches` is fully determined by the kernel structure
    /// for every workload in the suite, so it needs no separate encoding.
    fn memo_key(&self) -> String {
        use std::fmt::Write as _;
        let mut key = format!("{}|pc={}", self.name(), self.prefetch_conflict());
        for b in self.buffers() {
            let _ = write!(key, "|b:{}:{}:{:?}", b.name, b.bytes, b.role);
        }
        for k in self.kernels() {
            let launch = k.launch();
            let ops = k.tile_ops();
            let _ = write!(
                key,
                "|k:{}:g{}:t{}:s{}:tiles{}:inv{}:{:?}:{:?}:fp{}:int{}:ctl{}",
                k.name(),
                launch.grid_blocks,
                launch.threads_per_block,
                launch.shared_bytes_per_block,
                k.tiles_per_block(),
                k.invocations(),
                k.regularity(),
                k.standard_style(),
                ops.fp,
                ops.int,
                ops.control,
            );
        }
        key
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn role_predicates() {
        assert!(BufferRole::Input.is_input() && !BufferRole::Input.is_output());
        assert!(!BufferRole::Output.is_input() && BufferRole::Output.is_output());
        assert!(BufferRole::InOut.is_input() && BufferRole::InOut.is_output());
        assert!(!BufferRole::Scratch.is_input() && !BufferRole::Scratch.is_output());
    }

    #[test]
    fn spec_display() {
        let b = BufferSpec::new("a", 1024, BufferRole::Input);
        assert!(b.to_string().contains("a (1024 bytes"));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_size_rejected() {
        let _ = BufferSpec::new("bad", 0, BufferRole::Input);
    }

    #[test]
    fn try_new_validates_sizes() {
        assert!(BufferSpec::try_new("ok", 1, BufferRole::Input).is_ok());
        assert!(BufferSpec::try_new("ok", BufferSpec::MAX_BYTES, BufferRole::Input).is_ok());
        assert_eq!(
            BufferSpec::try_new("z", 0, BufferRole::Output),
            Err(BufferSpecError::ZeroSize {
                name: "z".to_string()
            })
        );
        let err =
            BufferSpec::try_new("big", BufferSpec::MAX_BYTES + 1, BufferRole::Input).unwrap_err();
        assert!(err.to_string().contains("per-buffer limit"), "{err}");
    }
}
