//! # hetsim-runtime
//!
//! The CUDA-like runtime layer of the hetsim simulator — the piece that
//! turns a workload description into the paper's measured quantities.
//!
//! The paper's methodology (§3.3) defines overall execution time as
//!
//! > the sum of data allocation time (`cudaMalloc()`/`cudaMallocManaged()`
//! > + `cudaFree()`), the data transfer time (`cudaMemcpy()` or explicit
//! > unified memory data transfer time), and GPU kernel execution time.
//!
//! [`Runner::run`] produces exactly that breakdown ([`RunReport`]) for any
//! [`GpuProgram`] under any of the five [`TransferMode`]s the paper
//! evaluates:
//!
//! | mode | allocation | CPU→GPU data | kernel |
//! |------|-----------|--------------|--------|
//! | `standard` | `cudaMalloc` | pageable `cudaMemcpy` | standard style |
//! | `async` | `cudaMalloc` | pageable `cudaMemcpy` | `cp.async` pipeline |
//! | `uvm` | `cudaMallocManaged` | demand migration | + fault stalls |
//! | `uvm_prefetch` | `cudaMallocManaged` | bulk prefetch + residual faults | + warm L2 |
//! | `uvm_prefetch_async` | `cudaMallocManaged` | bulk prefetch + residual faults | `cp.async` + warm L2 |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod device;
pub mod mode;
pub mod program;
pub mod report;
pub mod run;
pub mod stream;
pub mod timeline;

pub use alloc::AllocModel;
pub use device::Device;
pub use hetsim_chaos::{
    ChaosOverhead, ChaosReport, FaultPlan, FleetFaultPlan, HealthState, HealthTimeline,
    LifecycleEvent, LifecyclePhase, RecoveryPolicy, SimError,
};
pub use mode::TransferMode;
pub use program::{BufferRole, BufferSpec, BufferSpecError, GpuProgram, PageTouch};
pub use report::RunReport;
pub use run::{ChaosRunReport, Runner};
pub use stream::{BufferAccess, Engine, EventId, ScheduleItem, StreamId, StreamSchedule};
pub use timeline::Timeline;
