//! Run reports: the paper's three-way time breakdown plus counters.

use hetsim_counters::CounterSet;
use hetsim_engine::time::Nanos;
use std::fmt;
use std::ops::Add;

/// The measured outcome of one program run — the unit every figure in the
/// paper is built from.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunReport {
    /// Data allocation time (`cudaMalloc`/`cudaMallocManaged` + `cudaFree`).
    pub alloc: Nanos,
    /// Data transfer time (`cudaMemcpy` or UVM migration/prefetch traffic).
    pub memcpy: Nanos,
    /// GPU kernel execution time (including UVM fault stalls).
    pub kernel: Nanos,
    /// Fixed system overhead (context creation etc.), reported separately
    /// so breakdown figures can include or exclude it.
    pub system: Nanos,
    /// Hardware counters collected during the run.
    pub counters: CounterSet,
}

impl RunReport {
    /// The paper's "overall execution time": allocation + transfer + kernel
    /// (+ the constant system overhead that real measurements inevitably
    /// include).
    pub fn total(&self) -> Nanos {
        self.alloc + self.memcpy + self.kernel + self.system
    }

    /// The three-component sum without the system constant — what the
    /// normalized breakdown figures (Figs 7, 8, 11–13) plot.
    pub fn breakdown_total(&self) -> Nanos {
        self.alloc + self.memcpy + self.kernel
    }

    /// Fraction of [`RunReport::breakdown_total`] spent in a component.
    pub fn share(&self, component: Component) -> f64 {
        let t = self.breakdown_total().as_nanos() as f64;
        if t == 0.0 {
            return 0.0;
        }
        let c = match component {
            Component::Alloc => self.alloc,
            Component::Memcpy => self.memcpy,
            Component::Kernel => self.kernel,
        };
        c.as_nanos() as f64 / t
    }
}

impl Add for RunReport {
    type Output = RunReport;
    fn add(self, rhs: RunReport) -> RunReport {
        RunReport {
            alloc: self.alloc + rhs.alloc,
            memcpy: self.memcpy + rhs.memcpy,
            kernel: self.kernel + rhs.kernel,
            system: self.system + rhs.system,
            counters: self.counters + rhs.counters,
        }
    }
}

/// One component of the time breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Component {
    /// Allocation time.
    Alloc,
    /// Transfer time.
    Memcpy,
    /// Kernel time.
    Kernel,
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "total {} (alloc {}, memcpy {}, kernel {}, system {})",
            self.total(),
            self.alloc,
            self.memcpy,
            self.kernel,
            self.system
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> RunReport {
        RunReport {
            alloc: Nanos::from_millis(100),
            memcpy: Nanos::from_millis(300),
            kernel: Nanos::from_millis(100),
            system: Nanos::from_millis(50),
            counters: CounterSet::new(),
        }
    }

    #[test]
    fn totals() {
        let r = report();
        assert_eq!(r.total(), Nanos::from_millis(550));
        assert_eq!(r.breakdown_total(), Nanos::from_millis(500));
    }

    #[test]
    fn shares_sum_to_one() {
        let r = report();
        let s = r.share(Component::Alloc) + r.share(Component::Memcpy) + r.share(Component::Kernel);
        assert!((s - 1.0).abs() < 1e-12);
        assert_eq!(r.share(Component::Memcpy), 0.6);
    }

    #[test]
    fn empty_report_shares_are_zero() {
        let r = RunReport::default();
        assert_eq!(r.share(Component::Kernel), 0.0);
        assert_eq!(r.total(), Nanos::ZERO);
    }

    #[test]
    fn add_merges_components() {
        let sum = report() + report();
        assert_eq!(sum.total(), Nanos::from_millis(1100));
    }

    #[test]
    fn display_mentions_components() {
        let s = report().to_string();
        assert!(s.contains("alloc") && s.contains("memcpy") && s.contains("kernel"));
    }
}
