//! Allocation cost models (`cudaMalloc`, `cudaMallocManaged`, `cudaFree`).
//!
//! Allocation is a first-class component of the paper's breakdown: it
//! averages ~19% of overall time under `standard` and grows to ~38% of the
//! (smaller) total once UVM + Async Memcpy shrink the other components
//! (§6.1). The model is affine in the allocation size — a fixed driver
//! round trip plus per-GB page-mapping work — matching how `cudaMalloc`
//! behaves at GB scale.

use hetsim_engine::time::Nanos;

/// Affine allocation cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AllocModel {
    /// Fixed cost of one `cudaMalloc`.
    pub device_base: Nanos,
    /// Per-GiB cost of `cudaMalloc` (physical page mapping).
    pub device_per_gib: Nanos,
    /// Fixed cost of one `cudaMallocManaged`.
    pub managed_base: Nanos,
    /// Per-GiB cost of `cudaMallocManaged` (virtual range bookkeeping —
    /// physical backing is deferred to first touch, but the paper observes
    /// allocation time staying nearly constant across modes, so the per-GiB
    /// terms are close).
    pub managed_per_gib: Nanos,
    /// Fixed cost of one `cudaFree`.
    pub free_base: Nanos,
    /// Per-GiB cost of `cudaFree`.
    pub free_per_gib: Nanos,
    /// Extra per-GiB `cudaFree` cost for managed memory whose pages were
    /// *demand-migrated*: tearing down thousands of scattered 64 KB
    /// migration blocks (unmap + TLB shootdown + writeback bookkeeping) is
    /// far more expensive than releasing the large contiguous ranges a
    /// bulk prefetch creates. This is the mechanism that makes the plain
    /// `uvm` configuration a net loss in the paper's Figs 7/8 despite its
    /// transfer-time savings.
    pub managed_teardown_per_gib: Nanos,
}

impl AllocModel {
    /// Calibrated to CUDA 11.4 on an A100: ~90 µs + ~55 ms/GiB for
    /// `cudaMalloc`, slightly cheaper managed allocation, and ~60% of the
    /// allocation cost again to free.
    pub fn cuda11_a100() -> Self {
        AllocModel {
            device_base: Nanos::from_micros(90),
            device_per_gib: Nanos::from_millis(55),
            managed_base: Nanos::from_micros(65),
            managed_per_gib: Nanos::from_millis(50),
            free_base: Nanos::from_micros(40),
            free_per_gib: Nanos::from_millis(32),
            managed_teardown_per_gib: Nanos::from_millis(100),
        }
    }

    /// Extra `cudaFree` teardown cost for a managed allocation of `bytes`
    /// of which `demand_fraction` (in `[0, 1]`) was populated by demand
    /// migration rather than bulk prefetch.
    ///
    /// # Panics
    ///
    /// Panics if `demand_fraction` is outside `[0, 1]`.
    pub fn managed_teardown(&self, bytes: u64, demand_fraction: f64) -> Nanos {
        assert!(
            (0.0..=1.0).contains(&demand_fraction),
            "demand fraction out of [0,1]"
        );
        let gib = bytes as f64 / (1u64 << 30) as f64;
        self.managed_teardown_per_gib.scale(gib * demand_fraction)
    }

    /// Cost of `cudaMalloc(bytes)`.
    pub fn device_alloc(&self, bytes: u64) -> Nanos {
        affine(self.device_base, self.device_per_gib, bytes)
    }

    /// Cost of `cudaMallocManaged(bytes)`.
    pub fn managed_alloc(&self, bytes: u64) -> Nanos {
        affine(self.managed_base, self.managed_per_gib, bytes)
    }

    /// Cost of `cudaFree` for an allocation of `bytes`.
    pub fn free(&self, bytes: u64) -> Nanos {
        affine(self.free_base, self.free_per_gib, bytes)
    }

    /// Allocation + free cost for one buffer under managed or unmanaged
    /// allocation.
    pub fn alloc_and_free(&self, bytes: u64, managed: bool) -> Nanos {
        let alloc = if managed {
            self.managed_alloc(bytes)
        } else {
            self.device_alloc(bytes)
        };
        alloc + self.free(bytes)
    }
}

impl Default for AllocModel {
    fn default() -> Self {
        AllocModel::cuda11_a100()
    }
}

fn affine(base: Nanos, per_gib: Nanos, bytes: u64) -> Nanos {
    let gib = bytes as f64 / (1u64 << 30) as f64;
    base + per_gib.scale(gib)
}

#[cfg(test)]
mod tests {
    use super::*;

    const GIB: u64 = 1 << 30;

    #[test]
    fn zero_bytes_costs_base() {
        let m = AllocModel::cuda11_a100();
        assert_eq!(m.device_alloc(0), Nanos::from_micros(90));
        assert_eq!(m.free(0), Nanos::from_micros(40));
    }

    #[test]
    fn affine_scaling() {
        let m = AllocModel::cuda11_a100();
        let one = m.device_alloc(GIB);
        let four = m.device_alloc(4 * GIB);
        // Subtracting the base, 4 GiB costs 4x 1 GiB.
        let v1 = one - Nanos::from_micros(90);
        let v4 = four - Nanos::from_micros(90);
        assert_eq!(v4, v1 * 4);
    }

    #[test]
    fn managed_close_to_unmanaged() {
        // The paper observes near-constant allocation overhead across modes.
        let m = AllocModel::cuda11_a100();
        let d = m.device_alloc(4 * GIB).as_nanos() as f64;
        let u = m.managed_alloc(4 * GIB).as_nanos() as f64;
        assert!((u / d - 1.0).abs() < 0.15, "ratio {}", u / d);
    }

    #[test]
    fn alloc_and_free_combines() {
        let m = AllocModel::cuda11_a100();
        assert_eq!(
            m.alloc_and_free(GIB, false),
            m.device_alloc(GIB) + m.free(GIB)
        );
        assert_eq!(
            m.alloc_and_free(GIB, true),
            m.managed_alloc(GIB) + m.free(GIB)
        );
    }

    #[test]
    fn super_scale_allocation_fraction_is_plausible() {
        // 4 GiB (Super) alloc+free should land in the hundreds of ms — the
        // ~19-38% share §6 reports against multi-second totals.
        let m = AllocModel::cuda11_a100();
        let t = m.alloc_and_free(4 * GIB, false);
        assert!(
            t > Nanos::from_millis(200) && t < Nanos::from_millis(600),
            "{t}"
        );
    }
}
