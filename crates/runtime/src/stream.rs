//! CUDA streams and the classic multi-stream copy/compute overlap.
//!
//! Before UVM and `cp.async`, the standard way to hide transfer latency was
//! stream pipelining (§2.2 cites a decade of it): split buffers into
//! chunks, issue H2D copy / kernel / D2H copy of successive chunks on
//! different streams, and let the copy engines overlap the SMs. This module
//! implements that schedule on the discrete-event engine, giving the
//! repository the natural baseline the paper's related work compares
//! against — and a sixth configuration (`standard_overlapped`) for the
//! extension experiments.
//!
//! The device has one H2D copy engine, one D2H copy engine, and one compute
//! engine (the SM pool); operations on the same stream serialize, and each
//! engine serializes operations across streams — exactly the CUDA model.

use hetsim_engine::time::{Nanos, SimTime};
use hetsim_trace::{Category, EventKind, Trace, TraceBuilder, TraceConfig};
use std::fmt;

/// Identifier of a stream within one [`StreamSchedule`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamId(pub u32);

/// The engine an operation occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Engine {
    /// Host→device DMA engine.
    CopyH2D,
    /// Device→host DMA engine.
    CopyD2H,
    /// The SM pool.
    Compute,
}

impl Engine {
    /// All engines.
    pub const ALL: [Engine; 3] = [Engine::CopyH2D, Engine::CopyD2H, Engine::Compute];

    /// Display name, also the trace track each engine's spans land on.
    pub fn name(self) -> &'static str {
        match self {
            Engine::CopyH2D => "h2d",
            Engine::CopyD2H => "d2h",
            Engine::Compute => "compute",
        }
    }

    /// Inverse of [`Engine::name`].
    pub fn from_name(name: &str) -> Option<Engine> {
        Engine::ALL.into_iter().find(|e| e.name() == name)
    }
}

impl fmt::Display for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One operation enqueued on a stream.
#[derive(Debug, Clone)]
struct Op {
    stream: StreamId,
    engine: Engine,
    duration: Nanos,
    label: String,
}

/// A completed operation with its scheduled interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledOp {
    /// Stream the operation ran on.
    pub stream: StreamId,
    /// Engine it occupied.
    pub engine: Engine,
    /// Start time.
    pub start: SimTime,
    /// End time.
    pub end: SimTime,
    /// Operation label.
    pub label: String,
}

/// Builds and evaluates a multi-stream schedule.
///
/// # Example
///
/// ```
/// use hetsim_runtime::stream::{Engine, StreamSchedule, StreamId};
/// use hetsim_engine::time::Nanos;
///
/// let mut s = StreamSchedule::new();
/// // Two streams, each: copy in, compute, copy out.
/// for i in 0..2 {
///     let st = StreamId(i);
///     s.push(st, Engine::CopyH2D, Nanos::from_micros(10), "h2d");
///     s.push(st, Engine::Compute, Nanos::from_micros(10), "kernel");
///     s.push(st, Engine::CopyD2H, Nanos::from_micros(10), "d2h");
/// }
/// let outcome = s.run();
/// // Pipelining beats the 60us serial schedule.
/// assert!(outcome.makespan() < Nanos::from_micros(60));
/// ```
#[derive(Debug, Clone, Default)]
pub struct StreamSchedule {
    ops: Vec<Op>,
}

/// The evaluated schedule.
///
/// The single source of truth here is a [`Trace`]: [`StreamSchedule::run`]
/// records every operation as a `stream`-category span on its engine's
/// track, and the outcome's ops, makespan, and utilizations are all *views*
/// derived from that recording. The same trace feeds the Gantt renderer
/// ([`Timeline::from_trace`](crate::timeline::Timeline::from_trace)) and,
/// when a trace session is active, gets folded into it — so an exported
/// Chrome trace, the ASCII timeline, and the numeric summaries can never
/// disagree.
#[derive(Debug, Clone)]
pub struct ScheduleOutcome {
    trace: Trace,
}

impl StreamSchedule {
    /// An empty schedule.
    pub fn new() -> Self {
        StreamSchedule::default()
    }

    /// Enqueues an operation on `stream`, occupying `engine` for
    /// `duration`. Order of calls is the issue order (CUDA stream
    /// semantics: in-stream FIFO).
    pub fn push<S: Into<String>>(
        &mut self,
        stream: StreamId,
        engine: Engine,
        duration: Nanos,
        label: S,
    ) -> &mut Self {
        self.ops.push(Op {
            stream,
            engine,
            duration,
            label: label.into(),
        });
        self
    }

    /// Number of enqueued operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Evaluates the schedule: every operation starts as soon as both its
    /// stream (program order) and its engine (device resource) are free.
    pub fn run(&self) -> ScheduleOutcome {
        use std::collections::HashMap;
        let mut stream_free: HashMap<StreamId, SimTime> = HashMap::new();
        let mut engine_free: HashMap<Engine, SimTime> = HashMap::new();
        let mut b = TraceBuilder::new(TraceConfig::default().with_capacity(self.ops.len().max(1)));
        // Intern engine tracks up front in canonical order so track ids and
        // the exported lane order don't depend on which engine issues first.
        for e in Engine::ALL {
            b.track(e.name());
        }

        for op in &self.ops {
            let s = stream_free
                .get(&op.stream)
                .copied()
                .unwrap_or(SimTime::ZERO);
            let e = engine_free
                .get(&op.engine)
                .copied()
                .unwrap_or(SimTime::ZERO);
            let start = s.max(e);
            let end = start + op.duration;
            stream_free.insert(op.stream, end);
            engine_free.insert(op.engine, end);
            let track = b.track(op.engine.name());
            b.span_with(
                track,
                Category::Stream,
                op.label.clone(),
                start.as_nanos(),
                op.duration.as_nanos(),
                Some(("stream", f64::from(op.stream.0))),
            );
        }

        let trace = b.finish();
        // Fold the schedule into an active session so `--trace` exports see
        // stream operations alongside the runtime's phase spans, anchored
        // at the session's current sim time.
        if hetsim_trace::session::enabled() {
            hetsim_trace::session::with(|sess| {
                let at = sess.now();
                sess.absorb_at(&trace, at);
            });
        }
        ScheduleOutcome { trace }
    }

    /// Convenience: the chunked copy/compute pipeline over `chunks` chunks
    /// spread round-robin over `streams` streams, with per-chunk H2D,
    /// kernel, and D2H durations.
    pub fn chunked_pipeline(
        chunks: u32,
        streams: u32,
        h2d: Nanos,
        kernel: Nanos,
        d2h: Nanos,
    ) -> StreamSchedule {
        assert!(streams > 0, "need at least one stream");
        let mut s = StreamSchedule::new();
        for c in 0..chunks {
            let st = StreamId(c % streams);
            s.push(st, Engine::CopyH2D, h2d, format!("h2d[{c}]"));
            s.push(st, Engine::Compute, kernel, format!("kernel[{c}]"));
            s.push(st, Engine::CopyD2H, d2h, format!("d2h[{c}]"));
        }
        s
    }
}

impl ScheduleOutcome {
    /// The recorded schedule trace every other accessor derives from.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Total wall time of the schedule (the trace horizon).
    pub fn makespan(&self) -> Nanos {
        Nanos::from_nanos(self.trace.horizon())
    }

    /// The scheduled operations in issue order, reconstructed from the
    /// trace spans.
    pub fn ops(&self) -> Vec<ScheduledOp> {
        self.trace
            .events()
            .iter()
            .filter_map(|ev| {
                let EventKind::Span { dur } = ev.kind else {
                    return None;
                };
                let engine = Engine::from_name(self.trace.track_name(ev.track))?;
                let (_, stream) = ev.arg.filter(|(k, _)| *k == "stream")?;
                Some(ScheduledOp {
                    stream: StreamId(stream as u32),
                    engine,
                    start: SimTime::from_nanos(ev.ts),
                    end: SimTime::from_nanos(ev.ts + dur),
                    label: ev.name.clone().into_owned(),
                })
            })
            .collect()
    }

    /// Utilization of one engine over the makespan, `[0, 1]`.
    ///
    /// Operations on one engine never overlap (the engine serializes), so
    /// busy time is simply the sum of span durations on its track.
    pub fn utilization(&self, engine: Engine) -> f64 {
        let makespan = self.trace.horizon();
        if makespan == 0 {
            return 0.0;
        }
        let busy: u64 = match self.trace.find_track(engine.name()) {
            Some(id) => self.trace.track_spans(id).iter().map(|e| e.dur()).sum(),
            None => 0,
        };
        busy as f64 / makespan as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> Nanos {
        Nanos::from_micros(n)
    }

    #[test]
    fn single_stream_serializes() {
        let mut s = StreamSchedule::new();
        let st = StreamId(0);
        s.push(st, Engine::CopyH2D, us(10), "a");
        s.push(st, Engine::Compute, us(20), "b");
        s.push(st, Engine::CopyD2H, us(5), "c");
        let o = s.run();
        assert_eq!(o.makespan(), us(35));
        assert_eq!(o.ops()[1].start, SimTime::from_nanos(10_000));
    }

    #[test]
    fn two_streams_overlap_copy_and_compute() {
        let o = StreamSchedule::chunked_pipeline(2, 2, us(10), us(10), us(10)).run();
        // Serial would be 60us; with overlap the second chunk's H2D hides
        // behind the first chunk's kernel.
        assert!(o.makespan() < us(60), "makespan {}", o.makespan());
        assert!(o.makespan() >= us(40), "lower bound: fill + drain");
    }

    #[test]
    fn same_engine_serializes_across_streams() {
        let mut s = StreamSchedule::new();
        s.push(StreamId(0), Engine::Compute, us(10), "k0");
        s.push(StreamId(1), Engine::Compute, us(10), "k1");
        let o = s.run();
        assert_eq!(o.makespan(), us(20), "one SM pool, kernels serialize");
        assert!((o.utilization(Engine::Compute) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn more_streams_monotonically_help_until_engine_bound() {
        let mk = |streams| {
            StreamSchedule::chunked_pipeline(8, streams, us(10), us(10), us(10))
                .run()
                .makespan()
        };
        let one = mk(1);
        let two = mk(2);
        let four = mk(4);
        assert!(two < one);
        assert!(four <= two);
        // Engine bound: 8 kernels x 10us can never beat 80us + fill/drain.
        assert!(four >= us(80));
    }

    #[test]
    fn utilization_is_bounded() {
        let o = StreamSchedule::chunked_pipeline(6, 3, us(7), us(13), us(3)).run();
        for e in Engine::ALL {
            let u = o.utilization(e);
            assert!((0.0..=1.0).contains(&u), "{e}: {u}");
        }
        // Kernel engine is the bottleneck here, so it should be busiest.
        assert!(o.utilization(Engine::Compute) >= o.utilization(Engine::CopyD2H));
    }

    #[test]
    fn empty_schedule() {
        let s = StreamSchedule::new();
        assert!(s.is_empty());
        let o = s.run();
        assert_eq!(o.makespan(), Nanos::ZERO);
        assert_eq!(o.ops().len(), 0);
        assert_eq!(o.utilization(Engine::Compute), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one stream")]
    fn zero_streams_rejected() {
        let _ = StreamSchedule::chunked_pipeline(4, 0, us(1), us(1), us(1));
    }

    #[test]
    fn outcome_is_a_view_over_its_trace() {
        let o = StreamSchedule::chunked_pipeline(2, 2, us(10), us(10), us(10)).run();
        assert_eq!(o.trace().category_count(Category::Stream), 6);
        assert_eq!(o.ops().len(), 6);
        assert_eq!(o.trace().horizon(), o.makespan().as_nanos());
        // Ops reconstruct engine, stream, and label from the trace alone.
        let first = &o.ops()[0];
        assert_eq!(first.engine, Engine::CopyH2D);
        assert_eq!(first.stream, StreamId(0));
        assert_eq!(first.label, "h2d[0]");
    }

    #[test]
    fn active_session_absorbs_schedule() {
        hetsim_trace::session::start(TraceConfig::default());
        let mut s = StreamSchedule::new();
        s.push(StreamId(0), Engine::Compute, us(10), "k0");
        let _ = s.run();
        let t = hetsim_trace::session::finish().unwrap();
        assert_eq!(t.category_count(Category::Stream), 1);
        assert!(t.find_track("compute").is_some());
    }
}
