//! CUDA streams and the classic multi-stream copy/compute overlap.
//!
//! Before UVM and `cp.async`, the standard way to hide transfer latency was
//! stream pipelining (§2.2 cites a decade of it): split buffers into
//! chunks, issue H2D copy / kernel / D2H copy of successive chunks on
//! different streams, and let the copy engines overlap the SMs. This module
//! implements that schedule on the discrete-event engine, giving the
//! repository the natural baseline the paper's related work compares
//! against — and a sixth configuration (`standard_overlapped`) for the
//! extension experiments.
//!
//! The device has one H2D copy engine, one D2H copy engine, and one compute
//! engine (the SM pool); operations on the same stream serialize, and each
//! engine serializes operations across streams — exactly the CUDA model.

use hetsim_engine::resource::BusyTracker;
use hetsim_engine::time::{Nanos, SimTime};
use std::fmt;

/// Identifier of a stream within one [`StreamSchedule`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamId(pub u32);

/// The engine an operation occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Engine {
    /// Host→device DMA engine.
    CopyH2D,
    /// Device→host DMA engine.
    CopyD2H,
    /// The SM pool.
    Compute,
}

impl Engine {
    /// All engines.
    pub const ALL: [Engine; 3] = [Engine::CopyH2D, Engine::CopyD2H, Engine::Compute];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Engine::CopyH2D => "h2d",
            Engine::CopyD2H => "d2h",
            Engine::Compute => "compute",
        }
    }
}

impl fmt::Display for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One operation enqueued on a stream.
#[derive(Debug, Clone)]
struct Op {
    stream: StreamId,
    engine: Engine,
    duration: Nanos,
    label: String,
}

/// A completed operation with its scheduled interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledOp {
    /// Stream the operation ran on.
    pub stream: StreamId,
    /// Engine it occupied.
    pub engine: Engine,
    /// Start time.
    pub start: SimTime,
    /// End time.
    pub end: SimTime,
    /// Operation label.
    pub label: String,
}

/// Builds and evaluates a multi-stream schedule.
///
/// # Example
///
/// ```
/// use hetsim_runtime::stream::{Engine, StreamSchedule, StreamId};
/// use hetsim_engine::time::Nanos;
///
/// let mut s = StreamSchedule::new();
/// // Two streams, each: copy in, compute, copy out.
/// for i in 0..2 {
///     let st = StreamId(i);
///     s.push(st, Engine::CopyH2D, Nanos::from_micros(10), "h2d");
///     s.push(st, Engine::Compute, Nanos::from_micros(10), "kernel");
///     s.push(st, Engine::CopyD2H, Nanos::from_micros(10), "d2h");
/// }
/// let outcome = s.run();
/// // Pipelining beats the 60us serial schedule.
/// assert!(outcome.makespan() < Nanos::from_micros(60));
/// ```
#[derive(Debug, Clone, Default)]
pub struct StreamSchedule {
    ops: Vec<Op>,
}

/// The evaluated schedule.
#[derive(Debug, Clone)]
pub struct ScheduleOutcome {
    ops: Vec<ScheduledOp>,
    makespan: Nanos,
    busy: Vec<(Engine, BusyTracker)>,
}

impl StreamSchedule {
    /// An empty schedule.
    pub fn new() -> Self {
        StreamSchedule::default()
    }

    /// Enqueues an operation on `stream`, occupying `engine` for
    /// `duration`. Order of calls is the issue order (CUDA stream
    /// semantics: in-stream FIFO).
    pub fn push<S: Into<String>>(
        &mut self,
        stream: StreamId,
        engine: Engine,
        duration: Nanos,
        label: S,
    ) -> &mut Self {
        self.ops.push(Op {
            stream,
            engine,
            duration,
            label: label.into(),
        });
        self
    }

    /// Number of enqueued operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Evaluates the schedule: every operation starts as soon as both its
    /// stream (program order) and its engine (device resource) are free.
    pub fn run(&self) -> ScheduleOutcome {
        use std::collections::HashMap;
        let mut stream_free: HashMap<StreamId, SimTime> = HashMap::new();
        let mut engine_free: HashMap<Engine, SimTime> = HashMap::new();
        let mut busy: HashMap<Engine, BusyTracker> = HashMap::new();
        let mut scheduled = Vec::with_capacity(self.ops.len());
        let mut makespan = SimTime::ZERO;

        for op in &self.ops {
            let s = stream_free.get(&op.stream).copied().unwrap_or(SimTime::ZERO);
            let e = engine_free.get(&op.engine).copied().unwrap_or(SimTime::ZERO);
            let start = s.max(e);
            let end = start + op.duration;
            stream_free.insert(op.stream, end);
            engine_free.insert(op.engine, end);
            busy.entry(op.engine).or_default().record(start, end);
            makespan = makespan.max(end);
            scheduled.push(ScheduledOp {
                stream: op.stream,
                engine: op.engine,
                start,
                end,
                label: op.label.clone(),
            });
        }

        let mut busy: Vec<(Engine, BusyTracker)> = busy.into_iter().collect();
        busy.sort_by_key(|(e, _)| Engine::ALL.iter().position(|x| x == e));
        ScheduleOutcome {
            ops: scheduled,
            makespan: makespan.duration_since(SimTime::ZERO),
            busy,
        }
    }

    /// Convenience: the chunked copy/compute pipeline over `chunks` chunks
    /// spread round-robin over `streams` streams, with per-chunk H2D,
    /// kernel, and D2H durations.
    pub fn chunked_pipeline(
        chunks: u32,
        streams: u32,
        h2d: Nanos,
        kernel: Nanos,
        d2h: Nanos,
    ) -> StreamSchedule {
        assert!(streams > 0, "need at least one stream");
        let mut s = StreamSchedule::new();
        for c in 0..chunks {
            let st = StreamId(c % streams);
            s.push(st, Engine::CopyH2D, h2d, format!("h2d[{c}]"));
            s.push(st, Engine::Compute, kernel, format!("kernel[{c}]"));
            s.push(st, Engine::CopyD2H, d2h, format!("d2h[{c}]"));
        }
        s
    }
}

impl ScheduleOutcome {
    /// Total wall time of the schedule.
    pub fn makespan(&self) -> Nanos {
        self.makespan
    }

    /// The scheduled operations in issue order.
    pub fn ops(&self) -> &[ScheduledOp] {
        &self.ops
    }

    /// Utilization of one engine over the makespan, `[0, 1]`.
    pub fn utilization(&self, engine: Engine) -> f64 {
        let end = SimTime::ZERO + self.makespan;
        self.busy
            .iter()
            .find(|(e, _)| *e == engine)
            .map(|(_, b)| b.utilization(SimTime::ZERO, end))
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> Nanos {
        Nanos::from_micros(n)
    }

    #[test]
    fn single_stream_serializes() {
        let mut s = StreamSchedule::new();
        let st = StreamId(0);
        s.push(st, Engine::CopyH2D, us(10), "a");
        s.push(st, Engine::Compute, us(20), "b");
        s.push(st, Engine::CopyD2H, us(5), "c");
        let o = s.run();
        assert_eq!(o.makespan(), us(35));
        assert_eq!(o.ops()[1].start, SimTime::from_nanos(10_000));
    }

    #[test]
    fn two_streams_overlap_copy_and_compute() {
        let o = StreamSchedule::chunked_pipeline(2, 2, us(10), us(10), us(10)).run();
        // Serial would be 60us; with overlap the second chunk's H2D hides
        // behind the first chunk's kernel.
        assert!(o.makespan() < us(60), "makespan {}", o.makespan());
        assert!(o.makespan() >= us(40), "lower bound: fill + drain");
    }

    #[test]
    fn same_engine_serializes_across_streams() {
        let mut s = StreamSchedule::new();
        s.push(StreamId(0), Engine::Compute, us(10), "k0");
        s.push(StreamId(1), Engine::Compute, us(10), "k1");
        let o = s.run();
        assert_eq!(o.makespan(), us(20), "one SM pool, kernels serialize");
        assert!((o.utilization(Engine::Compute) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn more_streams_monotonically_help_until_engine_bound() {
        let mk = |streams| {
            StreamSchedule::chunked_pipeline(8, streams, us(10), us(10), us(10))
                .run()
                .makespan()
        };
        let one = mk(1);
        let two = mk(2);
        let four = mk(4);
        assert!(two < one);
        assert!(four <= two);
        // Engine bound: 8 kernels x 10us can never beat 80us + fill/drain.
        assert!(four >= us(80));
    }

    #[test]
    fn utilization_is_bounded() {
        let o = StreamSchedule::chunked_pipeline(6, 3, us(7), us(13), us(3)).run();
        for e in Engine::ALL {
            let u = o.utilization(e);
            assert!((0.0..=1.0).contains(&u), "{e}: {u}");
        }
        // Kernel engine is the bottleneck here, so it should be busiest.
        assert!(o.utilization(Engine::Compute) >= o.utilization(Engine::CopyD2H));
    }

    #[test]
    fn empty_schedule() {
        let s = StreamSchedule::new();
        assert!(s.is_empty());
        let o = s.run();
        assert_eq!(o.makespan(), Nanos::ZERO);
        assert_eq!(o.ops().len(), 0);
        assert_eq!(o.utilization(Engine::Compute), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one stream")]
    fn zero_streams_rejected() {
        let _ = StreamSchedule::chunked_pipeline(4, 0, us(1), us(1), us(1));
    }
}
