//! CUDA streams and the classic multi-stream copy/compute overlap.
//!
//! Before UVM and `cp.async`, the standard way to hide transfer latency was
//! stream pipelining (§2.2 cites a decade of it): split buffers into
//! chunks, issue H2D copy / kernel / D2H copy of successive chunks on
//! different streams, and let the copy engines overlap the SMs. This module
//! implements that schedule on the discrete-event engine, giving the
//! repository the natural baseline the paper's related work compares
//! against — and a sixth configuration (`standard_overlapped`) for the
//! extension experiments.
//!
//! The device has one H2D copy engine, one D2H copy engine, and one compute
//! engine (the SM pool); operations on the same stream serialize, and each
//! engine serializes operations across streams — exactly the CUDA model.

use hetsim_chaos::SimError;
use hetsim_engine::time::{Nanos, SimTime};
use hetsim_trace::{Category, Dim, EventKind, Trace, TraceBuilder, TraceConfig};
use std::fmt;

/// Identifier of a stream within one [`StreamSchedule`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamId(pub u32);

/// The engine an operation occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Engine {
    /// Host→device DMA engine.
    CopyH2D,
    /// Device→host DMA engine.
    CopyD2H,
    /// The SM pool.
    Compute,
}

impl Engine {
    /// All engines.
    pub const ALL: [Engine; 3] = [Engine::CopyH2D, Engine::CopyD2H, Engine::Compute];

    /// Display name, also the trace track each engine's spans land on.
    pub fn name(self) -> &'static str {
        match self {
            Engine::CopyH2D => "h2d",
            Engine::CopyD2H => "d2h",
            Engine::Compute => "compute",
        }
    }

    /// Inverse of [`Engine::name`].
    pub fn from_name(name: &str) -> Option<Engine> {
        Engine::ALL.into_iter().find(|e| e.name() == name)
    }

    /// Inverse of [`Engine::name`], with a typed error for unknown track
    /// names so callers can surface a diagnostic instead of silently
    /// dropping the operation (or panicking).
    pub fn parse(name: &str) -> Result<Engine, UnknownEngineError> {
        Engine::from_name(name).ok_or_else(|| UnknownEngineError(name.to_string()))
    }
}

/// A trace track name that does not correspond to any [`Engine`].
///
/// Returned by [`Engine::parse`]; surfaced by
/// [`ScheduleOutcome::unknown_tracks`] and reported by the sanitizer as a
/// diagnostic rather than panicking in trace export.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownEngineError(pub String);

impl fmt::Display for UnknownEngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown engine track name `{}`", self.0)
    }
}

impl std::error::Error for UnknownEngineError {}

impl fmt::Display for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The buffer chunk range an operation reads or writes.
///
/// Purely descriptive metadata: annotating an operation with an access does
/// not change how [`StreamSchedule::run`] evaluates the schedule. The
/// sanitizer's stream-hazard analysis consumes it to detect write/write and
/// read/write overlaps between operations that no stream, engine, or event
/// edge serializes — the simulated analogue of `compute-sanitizer
/// --tool racecheck`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BufferAccess {
    /// Name of the buffer being accessed.
    pub buffer: String,
    /// Half-open chunk range `[start, end)` within the buffer.
    pub chunks: std::ops::Range<u64>,
    /// Whether the operation writes the range (an H2D copy or a storing
    /// kernel) rather than only reading it (a D2H copy).
    pub write: bool,
}

impl BufferAccess {
    /// A read of `chunks` in `buffer`.
    pub fn reads<S: Into<String>>(buffer: S, chunks: std::ops::Range<u64>) -> Self {
        BufferAccess {
            buffer: buffer.into(),
            chunks,
            write: false,
        }
    }

    /// A write of `chunks` in `buffer`.
    pub fn writes<S: Into<String>>(buffer: S, chunks: std::ops::Range<u64>) -> Self {
        BufferAccess {
            buffer: buffer.into(),
            chunks,
            write: true,
        }
    }

    /// Whether two accesses conflict: same buffer, overlapping chunk
    /// ranges, and at least one side writing.
    pub fn conflicts_with(&self, other: &BufferAccess) -> bool {
        (self.write || other.write)
            && self.buffer == other.buffer
            && self.chunks.start < other.chunks.end
            && other.chunks.start < self.chunks.end
    }
}

/// Identifier of a recorded event within one [`StreamSchedule`].
///
/// Allocated by [`StreamSchedule::record_event`]; waited on with
/// [`StreamSchedule::wait_event`] — the simulated analogue of
/// `cudaEventRecord` / `cudaStreamWaitEvent` cross-stream dependencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(pub u32);

/// One entry in a [`StreamSchedule`]'s issue-order item list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleItem {
    /// An operation occupying `engine` for `duration` on `stream`.
    Op {
        /// Stream the operation is enqueued on (in-stream FIFO order).
        stream: StreamId,
        /// Engine the operation occupies (serialized across streams).
        engine: Engine,
        /// How long the engine is occupied.
        duration: Nanos,
        /// Label for traces and diagnostics.
        label: String,
        /// Optional buffer chunk range the operation touches, consumed by
        /// the sanitizer's hazard analysis.
        access: Option<BufferAccess>,
    },
    /// Records `event` at `stream`'s current frontier: the event fires when
    /// every operation previously enqueued on `stream` has completed.
    RecordEvent {
        /// Stream whose frontier the event captures.
        stream: StreamId,
        /// The event being recorded.
        event: EventId,
    },
    /// Blocks `stream` until `event` fires. Waiting on an event that was
    /// never recorded is a no-op at runtime (CUDA semantics for an
    /// unrecorded event) — the sanitizer flags it as a diagnostic.
    WaitEvent {
        /// Stream that blocks.
        stream: StreamId,
        /// The event waited on.
        event: EventId,
    },
}

/// A completed operation with its scheduled interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledOp {
    /// Stream the operation ran on.
    pub stream: StreamId,
    /// Engine it occupied.
    pub engine: Engine,
    /// Start time.
    pub start: SimTime,
    /// End time.
    pub end: SimTime,
    /// Operation label.
    pub label: String,
}

/// Builds and evaluates a multi-stream schedule.
///
/// # Example
///
/// ```
/// use hetsim_runtime::stream::{Engine, StreamSchedule, StreamId};
/// use hetsim_engine::time::Nanos;
///
/// let mut s = StreamSchedule::new();
/// // Two streams, each: copy in, compute, copy out.
/// for i in 0..2 {
///     let st = StreamId(i);
///     s.push(st, Engine::CopyH2D, Nanos::from_micros(10), "h2d");
///     s.push(st, Engine::Compute, Nanos::from_micros(10), "kernel");
///     s.push(st, Engine::CopyD2H, Nanos::from_micros(10), "d2h");
/// }
/// let outcome = s.run();
/// // Pipelining beats the 60us serial schedule.
/// assert!(outcome.makespan() < Nanos::from_micros(60));
/// ```
#[derive(Debug, Clone, Default)]
pub struct StreamSchedule {
    items: Vec<ScheduleItem>,
    next_event: u32,
}

/// The evaluated schedule.
///
/// The single source of truth here is a [`Trace`]: [`StreamSchedule::run`]
/// records every operation as a `stream`-category span on its engine's
/// track, and the outcome's ops, makespan, and utilizations are all *views*
/// derived from that recording. The same trace feeds the Gantt renderer
/// ([`Timeline::from_trace`](crate::timeline::Timeline::from_trace)) and,
/// when a trace session is active, gets folded into it — so an exported
/// Chrome trace, the ASCII timeline, and the numeric summaries can never
/// disagree.
#[derive(Debug, Clone)]
pub struct ScheduleOutcome {
    trace: Trace,
}

impl StreamSchedule {
    /// An empty schedule.
    pub fn new() -> Self {
        StreamSchedule::default()
    }

    /// Enqueues an operation on `stream`, occupying `engine` for
    /// `duration`. Order of calls is the issue order (CUDA stream
    /// semantics: in-stream FIFO).
    pub fn push<S: Into<String>>(
        &mut self,
        stream: StreamId,
        engine: Engine,
        duration: Nanos,
        label: S,
    ) -> &mut Self {
        self.items.push(ScheduleItem::Op {
            stream,
            engine,
            duration,
            label: label.into(),
            access: None,
        });
        self
    }

    /// Like [`push`](StreamSchedule::push), additionally annotating the
    /// operation with the buffer chunk range it touches so the sanitizer
    /// can analyze the schedule for cross-stream hazards.
    pub fn push_access<S: Into<String>>(
        &mut self,
        stream: StreamId,
        engine: Engine,
        duration: Nanos,
        label: S,
        access: BufferAccess,
    ) -> &mut Self {
        self.items.push(ScheduleItem::Op {
            stream,
            engine,
            duration,
            label: label.into(),
            access: Some(access),
        });
        self
    }

    /// Appends a raw [`ScheduleItem`] in issue order.
    ///
    /// The typed helpers ([`push`](StreamSchedule::push),
    /// [`push_access`](StreamSchedule::push_access),
    /// [`record_event`](StreamSchedule::record_event),
    /// [`wait_event`](StreamSchedule::wait_event)) are usually what you
    /// want; this exists so schedules can be rebuilt item-by-item (e.g. the
    /// differential-validation harness replays a schedule with perturbed
    /// durations while preserving event identities).
    pub fn push_item(&mut self, item: ScheduleItem) -> &mut Self {
        if let ScheduleItem::RecordEvent { event, .. } | ScheduleItem::WaitEvent { event, .. } =
            &item
        {
            self.next_event = self.next_event.max(event.0 + 1);
        }
        self.items.push(item);
        self
    }

    /// Records a fresh event at `stream`'s current frontier and returns its
    /// id: the event fires once everything previously enqueued on `stream`
    /// has completed (the `cudaEventRecord` analogue).
    pub fn record_event(&mut self, stream: StreamId) -> EventId {
        let event = EventId(self.next_event);
        self.next_event += 1;
        self.items.push(ScheduleItem::RecordEvent { stream, event });
        event
    }

    /// Makes `stream` wait for `event` before running anything enqueued on
    /// it afterwards (the `cudaStreamWaitEvent` analogue). Waiting on an
    /// event recorded later — or never — in issue order is a no-op at
    /// runtime; the sanitizer reports it.
    pub fn wait_event(&mut self, stream: StreamId, event: EventId) -> &mut Self {
        self.items.push(ScheduleItem::WaitEvent { stream, event });
        self
    }

    /// The schedule's items in issue order (operations plus event
    /// record/wait markers). This is the sanitizer's input.
    pub fn items(&self) -> &[ScheduleItem] {
        &self.items
    }

    /// Number of enqueued operations (event markers are not counted).
    pub fn len(&self) -> usize {
        self.items
            .iter()
            .filter(|i| matches!(i, ScheduleItem::Op { .. }))
            .count()
    }

    /// Whether the schedule has no operations.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Evaluates the schedule: every operation starts as soon as both its
    /// stream (program order, including event waits) and its engine (device
    /// resource) are free.
    pub fn run(&self) -> ScheduleOutcome {
        use std::collections::HashMap;
        let mut stream_free: HashMap<StreamId, SimTime> = HashMap::new();
        let mut engine_free: HashMap<Engine, SimTime> = HashMap::new();
        let mut event_time: HashMap<EventId, SimTime> = HashMap::new();
        let mut b = TraceBuilder::new(TraceConfig::default().with_capacity(self.len().max(1)));
        // Intern engine tracks up front in canonical order so track ids and
        // the exported lane order don't depend on which engine issues first.
        for e in Engine::ALL {
            b.track(e.name());
        }

        for item in &self.items {
            match item {
                ScheduleItem::Op {
                    stream,
                    engine,
                    duration,
                    label,
                    access: _,
                } => {
                    let s = stream_free.get(stream).copied().unwrap_or(SimTime::ZERO);
                    let e = engine_free.get(engine).copied().unwrap_or(SimTime::ZERO);
                    let start = s.max(e);
                    let end = start + *duration;
                    stream_free.insert(*stream, end);
                    engine_free.insert(*engine, end);
                    let track = b.track(engine.name());
                    b.set_label(Dim::Stream, &stream.0.to_string());
                    b.span_with(
                        track,
                        Category::Stream,
                        label.clone(),
                        start.as_nanos(),
                        duration.as_nanos(),
                        Some(("stream", f64::from(stream.0))),
                    );
                }
                ScheduleItem::RecordEvent { stream, event } => {
                    let s = stream_free.get(stream).copied().unwrap_or(SimTime::ZERO);
                    event_time.insert(*event, s);
                }
                ScheduleItem::WaitEvent { stream, event } => {
                    // Unrecorded events behave like CUDA's: the wait is a
                    // no-op (the event "fired at time zero").
                    if let Some(&t) = event_time.get(event) {
                        let s = stream_free.get(stream).copied().unwrap_or(SimTime::ZERO);
                        stream_free.insert(*stream, s.max(t));
                    }
                }
            }
        }

        let trace = b.finish();
        // Fold the schedule into an active session so `--trace` exports see
        // stream operations alongside the runtime's phase spans, anchored
        // at the session's current sim time.
        if hetsim_trace::session::enabled() {
            hetsim_trace::session::with(|sess| {
                let at = sess.now();
                sess.absorb_at(&trace, at);
            });
        }
        ScheduleOutcome { trace }
    }

    /// Evaluates the schedule under *strict* event semantics with a
    /// sim-time watchdog: unlike [`StreamSchedule::run`] (which keeps
    /// CUDA's waits-on-unrecorded-events-are-no-ops behavior), a wait here
    /// blocks its stream until the event's recording point — anywhere in
    /// issue order — has executed. Event-wait cycles, self-waits, and
    /// waits on never-recorded events therefore surface as a typed
    /// [`SimError::Deadlock`] naming every blocked stream, instead of
    /// silently reordering or spinning.
    ///
    /// For schedules where every wait follows its record in issue order
    /// (the well-formed case the sanitizer's `SAN-S003`/`SAN-S005` lints
    /// certify), `try_run` produces the same timing as `run`.
    ///
    /// # Errors
    ///
    /// [`SimError::Deadlock`] when no execution order can make progress.
    pub fn try_run(&self) -> Result<ScheduleOutcome, SimError> {
        self.try_run_watchdog(None)
    }

    /// [`StreamSchedule::try_run`] with a makespan deadline: a schedule
    /// that completes but takes longer than `deadline` returns
    /// [`SimError::Timeout`] — the sim-time analogue of a watchdog timer
    /// firing on a starved stream.
    ///
    /// # Errors
    ///
    /// [`SimError::Deadlock`] on blocked schedules, [`SimError::Timeout`]
    /// when the makespan exceeds `deadline`.
    pub fn try_run_deadline(&self, deadline: Nanos) -> Result<ScheduleOutcome, SimError> {
        self.try_run_watchdog(Some(deadline))
    }

    fn try_run_watchdog(&self, deadline: Option<Nanos>) -> Result<ScheduleOutcome, SimError> {
        use std::collections::HashMap;
        let items = &self.items;
        let n = items.len();

        // A wait binds to the event's *first* recording site in issue
        // order; re-records later in the schedule don't retarget it.
        let mut recorded_at: HashMap<u32, usize> = HashMap::new();
        for (i, item) in items.iter().enumerate() {
            if let ScheduleItem::RecordEvent { event, .. } = item {
                recorded_at.entry(event.0).or_insert(i);
            }
        }
        // Issue-order predecessors: the previous item on the same stream,
        // and (for operations) the previous operation on the same engine.
        let mut prev_stream: Vec<Option<usize>> = vec![None; n];
        let mut prev_engine: Vec<Option<usize>> = vec![None; n];
        {
            let mut last_s: HashMap<u32, usize> = HashMap::new();
            let mut last_e: HashMap<Engine, usize> = HashMap::new();
            for (i, item) in items.iter().enumerate() {
                let s = match item {
                    ScheduleItem::Op { stream, .. }
                    | ScheduleItem::RecordEvent { stream, .. }
                    | ScheduleItem::WaitEvent { stream, .. } => stream.0,
                };
                prev_stream[i] = last_s.insert(s, i);
                if let ScheduleItem::Op { engine, .. } = item {
                    prev_engine[i] = last_e.insert(*engine, i);
                }
            }
        }

        let mut done = vec![false; n];
        let mut remaining = n;
        let mut stream_free: HashMap<StreamId, SimTime> = HashMap::new();
        let mut engine_free: HashMap<Engine, SimTime> = HashMap::new();
        // Event fire time, captured at the binding record's execution.
        let mut record_time: Vec<Option<SimTime>> = vec![None; n];
        let mut b = TraceBuilder::new(TraceConfig::default().with_capacity(self.len().max(1)));
        for e in Engine::ALL {
            b.track(e.name());
        }

        // Fixed-point over issue order: each pass executes every item
        // whose predecessors (stream, engine, bound record) are done. The
        // timing of an item depends only on those predecessors, so the
        // result is independent of how the passes happen to interleave.
        while remaining > 0 {
            let mut progressed = false;
            for i in 0..n {
                if done[i] || prev_stream[i].is_some_and(|p| !done[p]) {
                    continue;
                }
                match &items[i] {
                    ScheduleItem::Op {
                        stream,
                        engine,
                        duration,
                        label,
                        access: _,
                    } => {
                        if prev_engine[i].is_some_and(|p| !done[p]) {
                            continue;
                        }
                        let s = stream_free.get(stream).copied().unwrap_or(SimTime::ZERO);
                        let e = engine_free.get(engine).copied().unwrap_or(SimTime::ZERO);
                        let start = s.max(e);
                        let end = start + *duration;
                        stream_free.insert(*stream, end);
                        engine_free.insert(*engine, end);
                        let track = b.track(engine.name());
                        b.set_label(Dim::Stream, &stream.0.to_string());
                        b.span_with(
                            track,
                            Category::Stream,
                            label.clone(),
                            start.as_nanos(),
                            duration.as_nanos(),
                            Some(("stream", f64::from(stream.0))),
                        );
                    }
                    ScheduleItem::RecordEvent { stream, .. } => {
                        let s = stream_free.get(stream).copied().unwrap_or(SimTime::ZERO);
                        record_time[i] = Some(s);
                    }
                    ScheduleItem::WaitEvent { stream, event } => {
                        let Some(&r) = recorded_at.get(&event.0) else {
                            continue; // never recorded: blocks forever
                        };
                        if !done[r] {
                            continue;
                        }
                        let t = record_time[r].unwrap_or(SimTime::ZERO);
                        let s = stream_free.get(stream).copied().unwrap_or(SimTime::ZERO);
                        stream_free.insert(*stream, s.max(t));
                    }
                }
                done[i] = true;
                remaining -= 1;
                progressed = true;
            }
            if !progressed {
                return Err(SimError::Deadlock {
                    schedule: "stream_schedule".to_string(),
                    blocked: self.describe_blocked(&done, &prev_stream, &recorded_at),
                });
            }
        }

        let trace = b.finish();
        let makespan = Nanos::from_nanos(trace.horizon());
        if let Some(d) = deadline {
            if makespan > d {
                return Err(SimError::Timeout {
                    schedule: "stream_schedule".to_string(),
                    makespan,
                    deadline: d,
                });
            }
        }
        if hetsim_trace::session::enabled() {
            hetsim_trace::session::with(|sess| {
                let at = sess.now();
                sess.absorb_at(&trace, at);
            });
        }
        Ok(ScheduleOutcome { trace })
    }

    /// One line per stuck stream head, for the deadlock diagnostic.
    fn describe_blocked(
        &self,
        done: &[bool],
        prev_stream: &[Option<usize>],
        recorded_at: &std::collections::HashMap<u32, usize>,
    ) -> Vec<String> {
        let mut blocked = Vec::new();
        for (i, item) in self.items.iter().enumerate() {
            // Stream heads only: the first undone item of each stream.
            if done[i] || prev_stream[i].is_some_and(|p| !done[p]) {
                continue;
            }
            match item {
                ScheduleItem::WaitEvent { stream, event } => match recorded_at.get(&event.0) {
                    Some(&r) => blocked.push(format!(
                        "stream {} blocked at item {i}: waits on event {} whose record \
                         (item {r}) cannot execute",
                        stream.0, event.0
                    )),
                    None => blocked.push(format!(
                        "stream {} blocked at item {i}: waits on event {} that is never \
                         recorded",
                        stream.0, event.0
                    )),
                },
                ScheduleItem::Op {
                    stream,
                    engine,
                    label,
                    ..
                } => blocked.push(format!(
                    "stream {} blocked at item {i}: `{label}` waits for engine {engine} \
                     held by a stalled stream",
                    stream.0
                )),
                ScheduleItem::RecordEvent { stream, event } => blocked.push(format!(
                    "stream {} blocked at item {i}: record of event {}",
                    stream.0, event.0
                )),
            }
        }
        blocked
    }

    /// Convenience: the chunked copy/compute pipeline over `chunks` chunks
    /// spread round-robin over `streams` streams, with per-chunk H2D,
    /// kernel, and D2H durations.
    pub fn chunked_pipeline(
        chunks: u32,
        streams: u32,
        h2d: Nanos,
        kernel: Nanos,
        d2h: Nanos,
    ) -> StreamSchedule {
        assert!(streams > 0, "need at least one stream");
        let mut s = StreamSchedule::new();
        for c in 0..chunks {
            let st = StreamId(c % streams);
            let range = u64::from(c)..u64::from(c) + 1;
            // Each chunk stays on one stream, so the copy-in / kernel /
            // copy-out chain over its range is serialized by construction;
            // annotating the accesses lets the sanitizer prove it hazard-free.
            s.push_access(
                st,
                Engine::CopyH2D,
                h2d,
                format!("h2d[{c}]"),
                BufferAccess::writes("data", range.clone()),
            );
            s.push_access(
                st,
                Engine::Compute,
                kernel,
                format!("kernel[{c}]"),
                BufferAccess::writes("data", range.clone()),
            );
            s.push_access(
                st,
                Engine::CopyD2H,
                d2h,
                format!("d2h[{c}]"),
                BufferAccess::reads("data", range),
            );
        }
        s
    }
}

impl ScheduleOutcome {
    /// The recorded schedule trace every other accessor derives from.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Total wall time of the schedule (the trace horizon).
    pub fn makespan(&self) -> Nanos {
        Nanos::from_nanos(self.trace.horizon())
    }

    /// The scheduled operations in issue order, reconstructed from the
    /// trace spans.
    pub fn ops(&self) -> Vec<ScheduledOp> {
        self.trace
            .events()
            .iter()
            .filter_map(|ev| {
                let EventKind::Span { dur } = ev.kind else {
                    return None;
                };
                let engine = Engine::from_name(self.trace.track_name(ev.track))?;
                let (_, stream) = ev.arg.filter(|(k, _)| *k == "stream")?;
                Some(ScheduledOp {
                    stream: StreamId(stream as u32),
                    engine,
                    start: SimTime::from_nanos(ev.ts),
                    end: SimTime::from_nanos(ev.ts + dur),
                    label: ev.name.clone().into_owned(),
                })
            })
            .collect()
    }

    /// Trace track names that carry `stream`-category spans but do not name
    /// any [`Engine`] — operations [`ops`](ScheduleOutcome::ops) silently
    /// skips because [`Engine::parse`] rejects the track.
    ///
    /// Always empty for traces produced by [`StreamSchedule::run`]; can be
    /// non-empty when an outcome is reconstructed from an external or
    /// hand-edited trace. The sanitizer surfaces each entry as a
    /// `SAN-S004` diagnostic instead of letting the drop go unnoticed.
    pub fn unknown_tracks(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for ev in self.trace.events() {
            if !matches!(ev.kind, EventKind::Span { .. }) || ev.cat != Category::Stream {
                continue;
            }
            let name = self.trace.track_name(ev.track);
            if Engine::parse(name).is_err() && !out.iter().any(|n| n == name) {
                out.push(name.to_string());
            }
        }
        out
    }

    /// Utilization of one engine over the makespan, `[0, 1]`.
    ///
    /// Operations on one engine never overlap (the engine serializes), so
    /// busy time is simply the sum of span durations on its track.
    pub fn utilization(&self, engine: Engine) -> f64 {
        let makespan = self.trace.horizon();
        if makespan == 0 {
            return 0.0;
        }
        let busy: u64 = match self.trace.find_track(engine.name()) {
            Some(id) => self.trace.track_spans(id).iter().map(|e| e.dur()).sum(),
            None => 0,
        };
        busy as f64 / makespan as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> Nanos {
        Nanos::from_micros(n)
    }

    #[test]
    fn single_stream_serializes() {
        let mut s = StreamSchedule::new();
        let st = StreamId(0);
        s.push(st, Engine::CopyH2D, us(10), "a");
        s.push(st, Engine::Compute, us(20), "b");
        s.push(st, Engine::CopyD2H, us(5), "c");
        let o = s.run();
        assert_eq!(o.makespan(), us(35));
        assert_eq!(o.ops()[1].start, SimTime::from_nanos(10_000));
    }

    #[test]
    fn two_streams_overlap_copy_and_compute() {
        let o = StreamSchedule::chunked_pipeline(2, 2, us(10), us(10), us(10)).run();
        // Serial would be 60us; with overlap the second chunk's H2D hides
        // behind the first chunk's kernel.
        assert!(o.makespan() < us(60), "makespan {}", o.makespan());
        assert!(o.makespan() >= us(40), "lower bound: fill + drain");
    }

    #[test]
    fn same_engine_serializes_across_streams() {
        let mut s = StreamSchedule::new();
        s.push(StreamId(0), Engine::Compute, us(10), "k0");
        s.push(StreamId(1), Engine::Compute, us(10), "k1");
        let o = s.run();
        assert_eq!(o.makespan(), us(20), "one SM pool, kernels serialize");
        assert!((o.utilization(Engine::Compute) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn more_streams_monotonically_help_until_engine_bound() {
        let mk = |streams| {
            StreamSchedule::chunked_pipeline(8, streams, us(10), us(10), us(10))
                .run()
                .makespan()
        };
        let one = mk(1);
        let two = mk(2);
        let four = mk(4);
        assert!(two < one);
        assert!(four <= two);
        // Engine bound: 8 kernels x 10us can never beat 80us + fill/drain.
        assert!(four >= us(80));
    }

    #[test]
    fn utilization_is_bounded() {
        let o = StreamSchedule::chunked_pipeline(6, 3, us(7), us(13), us(3)).run();
        for e in Engine::ALL {
            let u = o.utilization(e);
            assert!((0.0..=1.0).contains(&u), "{e}: {u}");
        }
        // Kernel engine is the bottleneck here, so it should be busiest.
        assert!(o.utilization(Engine::Compute) >= o.utilization(Engine::CopyD2H));
    }

    #[test]
    fn empty_schedule() {
        let s = StreamSchedule::new();
        assert!(s.is_empty());
        let o = s.run();
        assert_eq!(o.makespan(), Nanos::ZERO);
        assert_eq!(o.ops().len(), 0);
        assert_eq!(o.utilization(Engine::Compute), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one stream")]
    fn zero_streams_rejected() {
        let _ = StreamSchedule::chunked_pipeline(4, 0, us(1), us(1), us(1));
    }

    #[test]
    fn outcome_is_a_view_over_its_trace() {
        let o = StreamSchedule::chunked_pipeline(2, 2, us(10), us(10), us(10)).run();
        assert_eq!(o.trace().category_count(Category::Stream), 6);
        assert_eq!(o.ops().len(), 6);
        assert_eq!(o.trace().horizon(), o.makespan().as_nanos());
        // Ops reconstruct engine, stream, and label from the trace alone.
        let first = &o.ops()[0];
        assert_eq!(first.engine, Engine::CopyH2D);
        assert_eq!(first.stream, StreamId(0));
        assert_eq!(first.label, "h2d[0]");
    }

    #[test]
    fn event_serializes_across_streams() {
        let mut s = StreamSchedule::new();
        s.push(StreamId(0), Engine::CopyH2D, us(10), "h2d");
        let ev = s.record_event(StreamId(0));
        s.wait_event(StreamId(1), ev);
        s.push(StreamId(1), Engine::Compute, us(10), "kernel");
        let o = s.run();
        // Without the event the kernel would start at t=0; with it, it
        // waits for the copy.
        assert_eq!(o.ops()[1].start, SimTime::from_nanos(10_000));
        assert_eq!(o.makespan(), us(20));
    }

    #[test]
    fn wait_on_unrecorded_event_is_a_noop() {
        let mut s = StreamSchedule::new();
        s.wait_event(StreamId(0), EventId(99));
        s.push(StreamId(0), Engine::Compute, us(10), "k");
        let o = s.run();
        assert_eq!(o.ops()[0].start, SimTime::ZERO);
    }

    #[test]
    fn record_captures_frontier_not_later_work() {
        let mut s = StreamSchedule::new();
        s.push(StreamId(0), Engine::CopyH2D, us(10), "a");
        let ev = s.record_event(StreamId(0));
        // Work on stream 0 after the record must not delay the waiter.
        s.push(StreamId(0), Engine::CopyH2D, us(50), "b");
        s.wait_event(StreamId(1), ev);
        s.push(StreamId(1), Engine::Compute, us(5), "k");
        let o = s.run();
        let k = o.ops().iter().find(|op| op.label == "k").cloned().unwrap();
        assert_eq!(k.start, SimTime::from_nanos(10_000));
    }

    #[test]
    fn items_expose_accesses_and_len_counts_ops() {
        let mut s = StreamSchedule::new();
        s.push_access(
            StreamId(0),
            Engine::CopyH2D,
            us(1),
            "h2d",
            BufferAccess::writes("buf", 0..4),
        );
        let ev = s.record_event(StreamId(0));
        s.wait_event(StreamId(1), ev);
        assert_eq!(s.len(), 1, "event markers are not operations");
        assert_eq!(s.items().len(), 3);
        let ScheduleItem::Op {
            access: Some(a), ..
        } = &s.items()[0]
        else {
            panic!("expected annotated op");
        };
        assert_eq!(a.buffer, "buf");
        assert!(a.write);
        assert_eq!(a.chunks, 0..4);
    }

    #[test]
    fn access_conflicts() {
        let w = |r: std::ops::Range<u64>| BufferAccess::writes("b", r);
        let r = |r: std::ops::Range<u64>| BufferAccess::reads("b", r);
        assert!(w(0..4).conflicts_with(&w(3..5)));
        assert!(w(0..4).conflicts_with(&r(0..1)));
        assert!(
            !r(0..4).conflicts_with(&r(0..4)),
            "read/read never conflicts"
        );
        assert!(
            !w(0..4).conflicts_with(&w(4..8)),
            "half-open ranges touch but don't overlap"
        );
        assert!(!w(0..4).conflicts_with(&BufferAccess::writes("other", 0..4)));
    }

    #[test]
    fn push_item_preserves_event_ids() {
        let mut orig = StreamSchedule::new();
        orig.push(StreamId(0), Engine::CopyH2D, us(10), "h2d");
        let ev = orig.record_event(StreamId(0));
        orig.wait_event(StreamId(1), ev);
        orig.push(StreamId(1), Engine::Compute, us(10), "k");

        let mut rebuilt = StreamSchedule::new();
        for item in orig.items() {
            rebuilt.push_item(item.clone());
        }
        assert_eq!(rebuilt.items(), orig.items());
        assert_eq!(rebuilt.run().makespan(), orig.run().makespan());
        // Fresh events allocated after a replay don't collide with replayed ids.
        let fresh = rebuilt.record_event(StreamId(0));
        assert!(fresh.0 > ev.0);
    }

    #[test]
    fn chunked_pipeline_is_annotated() {
        let s = StreamSchedule::chunked_pipeline(2, 2, us(1), us(1), us(1));
        let annotated = s
            .items()
            .iter()
            .filter(|i| {
                matches!(
                    i,
                    ScheduleItem::Op {
                        access: Some(_),
                        ..
                    }
                )
            })
            .count();
        assert_eq!(annotated, 6);
    }

    #[test]
    fn engine_parse_round_trip() {
        for e in Engine::ALL {
            assert_eq!(Engine::parse(e.name()), Ok(e));
        }
        let err = Engine::parse("sm7").unwrap_err();
        assert!(err.to_string().contains("sm7"));
    }

    #[test]
    fn own_runs_have_no_unknown_tracks() {
        let o = StreamSchedule::chunked_pipeline(3, 2, us(1), us(1), us(1)).run();
        assert!(o.unknown_tracks().is_empty());
    }

    #[test]
    fn active_session_absorbs_schedule() {
        hetsim_trace::session::start(TraceConfig::default());
        let mut s = StreamSchedule::new();
        s.push(StreamId(0), Engine::Compute, us(10), "k0");
        let _ = s.run();
        let t = hetsim_trace::session::finish().unwrap();
        assert_eq!(t.category_count(Category::Stream), 1);
        assert!(t.find_track("compute").is_some());
    }

    #[test]
    fn try_run_matches_run_on_well_formed_schedules() {
        // Record precedes wait in issue order: strict and CUDA-no-op
        // semantics agree, so the watchdog must reproduce run() exactly.
        let mut s = StreamSchedule::new();
        s.push(StreamId(0), Engine::CopyH2D, us(10), "h2d");
        let e = s.record_event(StreamId(0));
        s.push(StreamId(0), Engine::Compute, us(20), "k0");
        s.wait_event(StreamId(1), e);
        s.push(StreamId(1), Engine::Compute, us(5), "k1");
        let strict = s.try_run().expect("well-formed schedule runs");
        assert_eq!(strict.makespan(), s.run().makespan());
        // k1 waits on e (fires at 10us) then queues behind k0 on the
        // compute engine (busy until 30us): 30 + 5.
        assert_eq!(strict.makespan(), us(35));
    }

    #[test]
    fn try_run_pipeline_parity() {
        let s = StreamSchedule::chunked_pipeline(4, 3, us(7), us(11), us(5));
        assert_eq!(s.try_run().unwrap().makespan(), s.run().makespan());
    }

    #[test]
    fn watchdog_detects_two_cycle_deadlock() {
        // s0 waits on e1 before recording e0; s1 waits on e0 before
        // recording e1. run() treats both waits as no-ops; strict
        // semantics deadlock.
        let mut s = StreamSchedule::new();
        s.push_item(ScheduleItem::WaitEvent {
            stream: StreamId(0),
            event: EventId(1),
        });
        s.push_item(ScheduleItem::RecordEvent {
            stream: StreamId(0),
            event: EventId(0),
        });
        s.push_item(ScheduleItem::WaitEvent {
            stream: StreamId(1),
            event: EventId(0),
        });
        s.push_item(ScheduleItem::RecordEvent {
            stream: StreamId(1),
            event: EventId(1),
        });
        let err = s.try_run().unwrap_err();
        match &err {
            hetsim_chaos::SimError::Deadlock { blocked, .. } => {
                assert_eq!(blocked.len(), 2, "both stream heads reported: {blocked:?}");
            }
            other => panic!("expected Deadlock, got {other:?}"),
        }
        // Deterministic: the same schedule yields the same diagnostic.
        assert_eq!(s.try_run().unwrap_err(), err);
    }

    #[test]
    fn watchdog_detects_three_cycle_deadlock() {
        let mut s = StreamSchedule::new();
        for i in 0..3u32 {
            s.push_item(ScheduleItem::WaitEvent {
                stream: StreamId(i),
                event: EventId((i + 1) % 3),
            });
            s.push_item(ScheduleItem::RecordEvent {
                stream: StreamId(i),
                event: EventId(i),
            });
        }
        assert!(matches!(
            s.try_run(),
            Err(hetsim_chaos::SimError::Deadlock { .. })
        ));
    }

    #[test]
    fn watchdog_detects_self_wait() {
        // A stream waiting on an event it records *later* can never
        // reach the record: classic self-deadlock.
        let mut s = StreamSchedule::new();
        s.push_item(ScheduleItem::WaitEvent {
            stream: StreamId(0),
            event: EventId(0),
        });
        s.push_item(ScheduleItem::RecordEvent {
            stream: StreamId(0),
            event: EventId(0),
        });
        let err = s.try_run().unwrap_err();
        assert!(err.to_string().contains("deadlock"), "{err}");
    }

    #[test]
    fn watchdog_detects_wait_on_never_recorded_event() {
        let mut s = StreamSchedule::new();
        s.push(StreamId(0), Engine::Compute, us(1), "k");
        s.push_item(ScheduleItem::WaitEvent {
            stream: StreamId(0),
            event: EventId(7),
        });
        match s.try_run().unwrap_err() {
            hetsim_chaos::SimError::Deadlock { blocked, .. } => {
                assert!(blocked.iter().any(|b| b.contains("never")), "{blocked:?}");
            }
            other => panic!("expected Deadlock, got {other:?}"),
        }
    }

    #[test]
    fn watchdog_wait_binds_to_first_record() {
        // The event is recorded twice; the wait observes the first
        // recording point, not the later one.
        let mut s = StreamSchedule::new();
        s.push(StreamId(0), Engine::Compute, us(10), "k0");
        s.push_item(ScheduleItem::RecordEvent {
            stream: StreamId(0),
            event: EventId(0),
        });
        s.push(StreamId(0), Engine::Compute, us(100), "k0b");
        s.push_item(ScheduleItem::RecordEvent {
            stream: StreamId(0),
            event: EventId(0),
        });
        s.push_item(ScheduleItem::WaitEvent {
            stream: StreamId(1),
            event: EventId(0),
        });
        s.push(StreamId(1), Engine::CopyH2D, us(1), "h2d");
        let o = s.try_run().unwrap();
        // s1's copy starts at 10us (first record), not 110us.
        assert_eq!(o.makespan(), us(110));
    }

    #[test]
    fn watchdog_out_of_order_wait_blocks_until_record() {
        // Wait issued before the record in issue order, but on a
        // *different* stream: strict semantics resolve it (no cycle),
        // while run() would treat it as a no-op.
        let mut s = StreamSchedule::new();
        s.push_item(ScheduleItem::WaitEvent {
            stream: StreamId(1),
            event: EventId(0),
        });
        s.push(StreamId(1), Engine::CopyH2D, us(1), "h2d");
        s.push(StreamId(0), Engine::Compute, us(10), "k0");
        s.push_item(ScheduleItem::RecordEvent {
            stream: StreamId(0),
            event: EventId(0),
        });
        let strict = s.try_run().unwrap();
        assert_eq!(strict.makespan(), us(11));
        // run()'s legacy no-op semantics finish earlier — the two
        // entry points intentionally disagree here.
        assert_eq!(s.run().makespan(), us(10));
    }

    #[test]
    fn watchdog_timeout_on_missed_deadline() {
        let mut s = StreamSchedule::new();
        s.push(StreamId(0), Engine::Compute, us(10), "k");
        assert!(s.try_run_deadline(us(10)).is_ok());
        match s.try_run_deadline(us(9)).unwrap_err() {
            hetsim_chaos::SimError::Timeout {
                makespan, deadline, ..
            } => {
                assert_eq!(makespan, us(10));
                assert_eq!(deadline, us(9));
            }
            other => panic!("expected Timeout, got {other:?}"),
        }
    }

    #[test]
    fn watchdog_failure_leaves_session_clean() {
        // A deadlocked evaluation must not fold partial work into an
        // active trace session.
        hetsim_trace::session::start(TraceConfig::default());
        let mut s = StreamSchedule::new();
        s.push_item(ScheduleItem::WaitEvent {
            stream: StreamId(0),
            event: EventId(0),
        });
        s.push_item(ScheduleItem::RecordEvent {
            stream: StreamId(0),
            event: EventId(0),
        });
        assert!(s.try_run().is_err());
        let t = hetsim_trace::session::finish().unwrap();
        assert_eq!(t.category_count(Category::Stream), 0);
    }
}
