//! The simulated heterogeneous system: GPU + host + interconnect + UVM.

use crate::alloc::AllocModel;
use hetsim_engine::time::Nanos;
use hetsim_gpu::config::GpuConfig;
use hetsim_mem::host::{HostConfig, HostMemory};
use hetsim_mem::link::CpuGpuLink;
use hetsim_uvm::space::UvmConfig;

/// One CPU-GPU heterogeneous system (the paper's Table 1 machine by
/// default), plus the runtime-level calibration knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct Device {
    /// Short identifier of the device configuration, used as the `device`
    /// label dimension on traced events (`"a100_epyc"` for the paper's
    /// Table 1 machine).
    pub name: &'static str,
    /// GPU configuration.
    pub gpu: GpuConfig,
    /// Host memory system.
    pub host: HostMemory,
    /// CPU↔GPU interconnect.
    pub link: CpuGpuLink,
    /// UVM subsystem configuration.
    pub uvm: UvmConfig,
    /// Allocation cost model.
    pub alloc: AllocModel,

    // ---- run-level calibration knobs ----
    /// Fixed per-run system overhead (context creation, driver init,
    /// process launch) — why the paper's Tiny inputs still take ~0.2 s.
    pub system_overhead: Nanos,
    /// Relative noise (sigma) on the system overhead.
    pub system_jitter: f64,
    /// Relative noise on allocation time.
    pub alloc_jitter: f64,
    /// Relative noise on transfer time (before DRAM-chip spill effects).
    pub copy_jitter: f64,
    /// Relative noise on kernel time.
    pub kernel_jitter: f64,
    /// How many fault batches are serviced concurrently across SMs and copy
    /// engines: the serialized kernel stall is `stall / overlap`.
    pub fault_stall_overlap: f64,
    /// Base fraction of streaming reads served from a prefetch-warmed L2
    /// in the prefetch modes, before scaling by available L1 capacity.
    pub l2_warm_base: f64,
    /// L1 capacity (bytes) at which the warm-L2 benefit saturates; smaller
    /// L1 carveouts (big shared memory) proportionally lose the benefit —
    /// the Fig 13 "too much shared memory hurts UVM" effect.
    pub l2_warm_l1_reference: u64,
}

impl Device {
    /// The paper's evaluation platform: A100 + EPYC 7742 + PCIe 4.0.
    pub fn a100_epyc() -> Self {
        Device {
            name: "a100_epyc",
            gpu: GpuConfig::a100(),
            host: HostMemory::new(HostConfig::epyc7742()),
            link: CpuGpuLink::pcie4_a100(),
            uvm: UvmConfig::a100(),
            alloc: AllocModel::cuda11_a100(),
            system_overhead: Nanos::from_millis(190),
            system_jitter: 0.045,
            alloc_jitter: 0.02,
            copy_jitter: 0.015,
            kernel_jitter: 0.006,
            fault_stall_overlap: 2.2,
            l2_warm_base: 0.55,
            l2_warm_l1_reference: 128 * 1024,
        }
    }

    /// The warm-L2 fraction for the current carveout: proportional to the
    /// L1 capacity left after the shared-memory carveout, saturating at
    /// `l2_warm_base`.
    pub fn l2_warm_fraction(&self) -> f64 {
        let l1 = self.gpu.carveout.l1_bytes() as f64;
        self.l2_warm_base * (l1 / self.l2_warm_l1_reference as f64).min(1.0)
    }
}

impl Default for Device {
    fn default() -> Self {
        Device::a100_epyc()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim_mem::carveout::Carveout;

    #[test]
    fn preset_is_consistent() {
        let d = Device::a100_epyc();
        assert_eq!(d.gpu.sm_count, 108);
        assert_eq!(d.host.config().chips, 16);
        assert!(d.fault_stall_overlap >= 1.0);
        assert_eq!(Device::default(), d);
    }

    #[test]
    fn warm_fraction_saturates_with_big_l1() {
        let d = Device::a100_epyc(); // 32KB shared -> 160KB L1 > reference
        assert!((d.l2_warm_fraction() - d.l2_warm_base).abs() < 1e-12);
    }

    #[test]
    fn warm_fraction_shrinks_with_small_l1() {
        let mut d = Device::a100_epyc();
        d.gpu = d.gpu.with_carveout(Carveout::with_shared_kib(128).unwrap()); // 64KB L1
        let f = d.l2_warm_fraction();
        assert!(f < d.l2_warm_base);
        assert!((f - d.l2_warm_base * 0.5).abs() < 1e-9);
    }
}
