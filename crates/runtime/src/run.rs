//! The end-to-end run pipeline: one [`GpuProgram`] under one
//! [`TransferMode`] on one [`Device`] → one [`RunReport`].

use crate::device::Device;
use crate::mode::TransferMode;
use crate::program::{BufferSpec, GpuProgram, PageTouch};
use crate::report::RunReport;
use hetsim_chaos::{ChaosCtx, ChaosReport, FaultPlan, RecoveryPolicy, SimError};
use hetsim_counters::{CounterSet, Occupancy};
use hetsim_engine::rng::SimRng;
use hetsim_engine::time::Nanos;
use hetsim_gpu::exec::{ExecEnv, KernelExecutor};
use hetsim_mem::addr::Addr;
use hetsim_mem::link::LinkPath;
use hetsim_trace::{Category, Dim};
use hetsim_uvm::prefetch::PrefetchModel;
use hetsim_uvm::space::UvmSpace;
use std::borrow::Cow;

/// Sets one ambient label dimension on the active trace session: every
/// event recorded from here on carries it. No-op when tracing is off.
fn set_label(dim: Dim, value: &str) {
    hetsim_trace::session::with(|b| b.set_label(dim, value));
}

/// Saves the active session's label context on construction and restores
/// it on drop, so labels set inside a scope (device, mode, stream) cannot
/// leak past it — including through `?` early returns.
struct LabelScope(Option<hetsim_trace::LabelSet>);

impl LabelScope {
    fn new() -> Self {
        LabelScope(hetsim_trace::session::with(|b| b.label_context()))
    }
}

impl Drop for LabelScope {
    fn drop(&mut self) {
        if let Some(saved) = self.0 {
            hetsim_trace::session::with(|b| b.set_label_context(saved));
        }
    }
}

/// Emits one runtime phase span on the `runtime` track of the active trace
/// session and advances trace time by its duration. No-op when tracing is
/// off or the phase is empty.
///
/// The additivity contract of the trace layer rests on this helper: every
/// `Nanos` the runner adds to a report component goes through exactly one
/// `trace_phase` call with the matching category, so per-category span sums
/// reproduce the report breakdown to the nanosecond.
fn trace_phase(cat: Category, name: impl Into<Cow<'static, str>>, dur: Nanos) {
    if dur.is_zero() || !hetsim_trace::session::enabled() {
        return;
    }
    let name = name.into();
    hetsim_trace::session::with(|b| {
        let track = b.track("runtime");
        b.phase_span(track, cat, name, dur.as_nanos());
    });
}

/// Upper bound on the number of per-kernel invocation rounds replayed
/// through the temporal touch path. Touch models signal convergence by
/// returning `None` well before this; the cap only bounds pathological
/// models.
const MAX_SEQUENCED_ROUNDS: u64 = 64;

/// Resolves buffer-relative [`PageTouch`]es into absolute [`ChunkTouch`]es
/// against the run's buffer layout. Touches on `Scratch` buffers are
/// dropped (device-only memory never far-faults against the host) and
/// chunk indices are clamped into the buffer's chunk count.
fn resolve_touches(
    touches: &[PageTouch],
    buffers: &[BufferSpec],
    bases: &[Addr],
    chunk_size: u64,
) -> Vec<hetsim_uvm::ChunkTouch> {
    use hetsim_uvm::page::ChunkId;
    let mut seq = Vec::with_capacity(touches.len());
    for t in touches {
        let b = &buffers[t.buffer];
        if matches!(b.role, crate::program::BufferRole::Scratch) {
            continue;
        }
        let nchunks = b.bytes.div_ceil(chunk_size).max(1);
        let idx = t.chunk % nchunks;
        seq.push(hetsim_uvm::ChunkTouch {
            chunk: ChunkId::new(bases[t.buffer].as_u64() / chunk_size + idx),
            write: t.write,
            host_backed: b.role.is_input(),
        });
    }
    seq
}

/// Runs programs on a simulated device.
///
/// # Example
///
/// ```
/// use hetsim_runtime::{Device, Runner, TransferMode};
/// use hetsim_workloads::{suite, InputSize};
///
/// let runner = Runner::new(Device::a100_epyc());
/// let program = suite::by_name("vector_seq", InputSize::Tiny).expect("registered");
/// let report = runner.run(&program, TransferMode::UvmPrefetchAsync, 0);
/// assert!(report.total() > hetsim_engine::time::Nanos::ZERO);
/// println!("{report}");
/// ```
#[derive(Debug, Clone)]
pub struct Runner {
    device: Device,
    executor: KernelExecutor,
    chaos: Option<(FaultPlan, RecoveryPolicy)>,
}

/// The result of a fallible, chaos-aware run: the (possibly degraded)
/// report plus the full injection/recovery bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosRunReport {
    /// The run's breakdown, inclusive of all recovery costs.
    pub report: RunReport,
    /// The mode the caller asked for.
    pub requested_mode: TransferMode,
    /// The mode the run actually completed under (equals
    /// `requested_mode` unless thrashing degraded it down the ladder).
    pub effective_mode: TransferMode,
    /// Injected faults, recovery actions, and their per-component costs,
    /// cumulative over every degradation attempt.
    pub chaos: ChaosReport,
}

impl ChaosRunReport {
    /// Whether the run degraded away from the requested mode.
    pub fn degraded(&self) -> bool {
        self.requested_mode != self.effective_mode
    }
}

impl Runner {
    /// Creates a runner for a device.
    pub fn new(device: Device) -> Self {
        let executor = KernelExecutor::new(device.gpu.clone());
        Runner {
            device,
            executor,
            chaos: None,
        }
    }

    /// The device configuration.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Replaces the kernel executor (e.g. to change the sampling width).
    pub fn with_executor(mut self, executor: KernelExecutor) -> Self {
        self.executor = executor;
        self
    }

    /// Arms fault injection: [`Runner::try_run_base`] will inject from
    /// `plan` and recover under `policy`. The infallible
    /// [`Runner::run_base`]/[`Runner::run`] paths stay chaos-free, so
    /// fault-free baselines remain available from the same runner.
    pub fn with_chaos(mut self, plan: FaultPlan, policy: RecoveryPolicy) -> Self {
        self.chaos = Some((plan, policy));
        self
    }

    /// The armed fault plan and policy, if any.
    pub fn chaos(&self) -> Option<&(FaultPlan, RecoveryPolicy)> {
        self.chaos.as_ref()
    }

    /// Executes one run and reports the paper's three-way breakdown.
    ///
    /// `run_index` seeds the run's measurement noise: the same
    /// `(program, mode, run_index)` triple always reproduces the same
    /// report, and 30 distinct indices reproduce the paper's 30-run
    /// distributions.
    pub fn run(&self, program: &dyn GpuProgram, mode: TransferMode, run_index: u64) -> RunReport {
        let base = self.run_base(program, mode);
        self.apply_noise(&base, program, mode, run_index)
    }

    /// The deterministic, noise-free run: the expensive part (cache and
    /// UVM simulation). Experiments building 30-run distributions compute
    /// this once and call [`Runner::apply_noise`] per run index.
    ///
    /// Always chaos-free (an inert injection context), even on a runner
    /// armed via [`Runner::with_chaos`] — fault injection only flows
    /// through [`Runner::try_run_base`].
    ///
    /// # Panics
    ///
    /// Panics if the program has no kernels; the fallible path returns
    /// [`SimError::InvalidProgram`] instead.
    pub fn run_base(&self, program: &dyn GpuProgram, mode: TransferMode) -> RunReport {
        let mut ctx = ChaosCtx::inert();
        self.base_pipeline(program, mode, &mut ctx)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// The fallible, chaos-aware base run: injects faults from the armed
    /// [`FaultPlan`], pays recovery costs in sim time, degrades the mode
    /// down the [`TransferMode::degraded`] ladder under sustained
    /// thrashing, and never panics on a well-formed program.
    ///
    /// Every recovery cost is a pure additive overhead booked per
    /// component in the returned [`ChaosReport`], so subtracting
    /// `chaos.overhead` from the report's components reproduces the
    /// fault-free [`Runner::run_base`] of `effective_mode` exactly —
    /// counters included.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidPlan`] for impossible plans (checked up front),
    /// [`SimError::InvalidProgram`] for kernel-less programs, and the
    /// recovery-budget errors ([`SimError::RetryExhausted`],
    /// [`SimError::ReplayExhausted`], [`SimError::PinnedAllocFailed`])
    /// when faults outlast the policy.
    pub fn try_run_base(
        &self,
        program: &dyn GpuProgram,
        mode: TransferMode,
    ) -> Result<ChaosRunReport, SimError> {
        let (plan, policy) = self
            .chaos
            .unwrap_or((FaultPlan::off(), RecoveryPolicy::default()));
        plan.validate(&policy)?;

        let mut total = ChaosReport::new(plan.seed);
        total.attempts = 0;
        let mut attempt_mode = mode;
        let mut abandoned = Nanos::ZERO;
        loop {
            let mut ctx = ChaosCtx::new(&plan, &policy, &[program.name(), attempt_mode.name()]);
            let mut report = self.base_pipeline(program, attempt_mode, &mut ctx)?;

            // Sustained thrashing (injected refaults per chunk-kernel
            // site above the policy threshold) abandons the attempt and
            // degrades the mode, charging the abandoned sim time to the
            // system component — the driver's "stop fighting the fault
            // storm and fall back" move.
            let chunk = self.device.uvm.chunk_size.max(1);
            let sites = program.footprint().div_ceil(chunk).max(1) * program.kernels().len() as u64;
            let thrashing = attempt_mode.uses_uvm()
                && policy.degrade_modes
                && ctx.storm_ratio(sites) > policy.thrash_threshold;
            if thrashing {
                if let Some(next) = attempt_mode.degraded() {
                    let cost = report.total();
                    // The abandonment marker belongs to the mode being
                    // abandoned, not to the caller's ambient context.
                    let _labels = LabelScope::new();
                    set_label(Dim::Mode, attempt_mode.name());
                    ctx.record_abandoned(attempt_mode.name(), next.name(), cost);
                    total.absorb(ctx.finish());
                    abandoned += cost;
                    attempt_mode = next;
                    continue;
                }
            }

            total.absorb(ctx.finish());
            report.system += abandoned;
            return Ok(ChaosRunReport {
                report,
                requested_mode: mode,
                effective_mode: attempt_mode,
                chaos: total,
            });
        }
    }

    /// The shared pipeline behind [`Runner::run_base`] and
    /// [`Runner::try_run_base`]: one attempt under one mode, with fault
    /// injection threaded through `ctx`. With an inert context this is
    /// bit-identical to the historical chaos-free run; chaos extras are
    /// booked in `ctx` along the way and applied to the components once,
    /// after occupancy is derived from the clean breakdown (so recovered
    /// runs keep fault-free counters — the separability invariant).
    fn base_pipeline(
        &self,
        program: &dyn GpuProgram,
        mode: TransferMode,
        ctx: &mut ChaosCtx,
    ) -> Result<RunReport, SimError> {
        let dev = &self.device;
        // Every event this attempt records carries the device and mode as
        // label dimensions, so multi-mode traces slice per mode without
        // span-name parsing. The scope guard restores the caller's
        // context on every exit path.
        let _labels = LabelScope::new();
        set_label(Dim::Device, dev.name);
        set_label(Dim::Mode, mode.name());
        let buffers = program.buffers();
        let kernels = program.kernels();
        if kernels.is_empty() {
            return Err(SimError::InvalidProgram(format!(
                "program `{}` has no kernels",
                program.name()
            )));
        }

        // ---- allocation: cudaMalloc/cudaMallocManaged + cudaFree ----
        let mut alloc = Nanos::ZERO;
        for b in &buffers {
            let t = dev.alloc.alloc_and_free(b.bytes, mode.uses_uvm());
            trace_phase(Category::Alloc, format!("alloc({})", b.name), t);
            alloc += t;
        }

        // Async-copy modes stage through pinned host memory; chaos can
        // fail that allocation, falling back to pageable staging (its
        // allocation cost is the recovery charge) or erroring when the
        // policy forbids the fallback.
        if mode.uses_async_copy() && ctx.active() {
            let staging: u64 = buffers
                .iter()
                .filter(|b| b.role.is_input())
                .map(|b| b.bytes)
                .sum();
            let fallback = dev.alloc.alloc_and_free(staging.max(1), false);
            let extra = ctx.pinned_alloc("staging", fallback)?;
            trace_phase(Category::Alloc, "chaos_pinned_fallback", extra);
        }

        let mut counters = CounterSet::new();
        let (memcpy, kernel) = if mode.uses_uvm() {
            self.run_uvm(program, mode, &buffers, &kernels, &mut counters, ctx)?
        } else {
            self.run_explicit(mode, &buffers, &kernels, &mut counters, ctx)?
        };

        // Freeing managed memory whose pages were demand-migrated tears
        // down scattered migration blocks — the hidden allocation cost of
        // the plain `uvm` configuration.
        if mode.uses_uvm() {
            let touched = counters.uvm.pages_migrated()
                + counters.uvm.pages_prefetched()
                + counters.uvm.pages_heuristic();
            let demand_fraction = if touched == 0 {
                0.0
            } else {
                counters.uvm.pages_migrated() as f64 / touched as f64
            };
            let t = dev
                .alloc
                .managed_teardown(program.footprint(), demand_fraction);
            trace_phase(Category::Alloc, "managed_teardown", t);
            alloc += t;
        }

        trace_phase(Category::Engine, "system_overhead", dev.system_overhead);

        let mut report = RunReport {
            alloc,
            memcpy,
            kernel,
            system: dev.system_overhead,
            counters,
        };
        // Occupancy derives from the clean breakdown; chaos recovery time
        // is applied after, as a pure additive overhead per component.
        set_achieved_occupancy(&mut report);
        let overhead = ctx.report().overhead;
        report.alloc += overhead.alloc;
        report.memcpy += overhead.memcpy;
        report.kernel += overhead.kernel;
        report.system += overhead.system;
        Ok(report)
    }

    /// Applies one run's measurement noise to a noise-free base report:
    /// component jitters plus the host DRAM-chip spill penalty on transfer
    /// time (the paper's Fig 6 Mega-input instability).
    pub fn apply_noise(
        &self,
        base: &RunReport,
        program: &dyn GpuProgram,
        mode: TransferMode,
        run_index: u64,
    ) -> RunReport {
        let dev = &self.device;
        let mut rng =
            SimRng::seed_from_parts(&["hetsim.run", program.name(), mode.name()], run_index);
        let placement = dev.host.place(program.footprint(), &mut rng);
        let spill_penalty = placement.transfer_penalty(dev.host.config().cross_chip_derate);

        let mut report = RunReport {
            alloc: base.alloc.scale(rng.jitter(dev.alloc_jitter, 0.5)),
            memcpy: base
                .memcpy
                .scale(spill_penalty * rng.jitter(dev.copy_jitter, 0.5)),
            kernel: base.kernel.scale(rng.jitter(dev.kernel_jitter, 0.5)),
            system: base.system.scale(rng.jitter(dev.system_jitter, 0.5)),
            counters: base.counters,
        };
        set_achieved_occupancy(&mut report);
        report
    }

    /// Explicit-copy path: `standard` and `async`.
    fn run_explicit(
        &self,
        mode: TransferMode,
        buffers: &[BufferSpec],
        kernels: &[&dyn hetsim_gpu::kernel::KernelModel],
        counters: &mut CounterSet,
        ctx: &mut ChaosCtx,
    ) -> Result<(Nanos, Nanos), SimError> {
        let dev = &self.device;
        // Copies and kernels are labeled with the engine lane they'd
        // occupy on real hardware (`h2d` / `d2h` copy engines, `compute`),
        // restored to the caller's context by the scope guard.
        let _labels = LabelScope::new();
        let mut memcpy = Nanos::ZERO;
        for b in buffers {
            if b.role.is_input() {
                set_label(Dim::Stream, "h2d");
                let t = dev.link.record_transfer(LinkPath::PageableCopy, b.bytes);
                counters.transfer.record_h2d_copy(b.bytes, t);
                trace_phase(Category::Memcpy, format!("memcpy_h2d({})", b.name), t);
                memcpy += t;
                let extra = ctx.transfer(&format!("memcpy_h2d({})", b.name), t)?;
                trace_phase(
                    Category::Memcpy,
                    format!("chaos_retry_h2d({})", b.name),
                    extra,
                );
            }
            if b.role.is_output() {
                set_label(Dim::Stream, "d2h");
                let t = dev.link.record_transfer(LinkPath::PageableCopy, b.bytes);
                counters.transfer.record_d2h_copy(b.bytes, t);
                trace_phase(Category::Memcpy, format!("memcpy_d2h({})", b.name), t);
                memcpy += t;
                let extra = ctx.transfer(&format!("memcpy_d2h({})", b.name), t)?;
                trace_phase(
                    Category::Memcpy,
                    format!("chaos_retry_d2h({})", b.name),
                    extra,
                );
            }
        }

        let mut kernel = Nanos::ZERO;
        let env = ExecEnv::standard();
        set_label(Dim::Stream, "compute");
        for k in kernels {
            let style = mode.kernel_style(k.standard_style());
            let r = self.executor.execute(*k, style, &env);
            let inv = k.invocations().max(1);
            trace_phase(Category::Kernel, k.name().to_string(), r.time * inv);
            kernel += r.time * inv;
            merge_kernel_counters(counters, &r, inv);
            let extra = ctx.kernel(k.name(), r.time * inv)?;
            trace_phase(
                Category::Kernel,
                format!("chaos_replay({})", k.name()),
                extra,
            );
        }
        Ok((memcpy, kernel))
    }

    /// Managed-memory path: `uvm`, `uvm_prefetch`, `uvm_prefetch_async`.
    fn run_uvm(
        &self,
        program: &dyn GpuProgram,
        mode: TransferMode,
        buffers: &[BufferSpec],
        kernels: &[&dyn hetsim_gpu::kernel::KernelModel],
        counters: &mut CounterSet,
        ctx: &mut ChaosCtx,
    ) -> Result<(Nanos, Nanos), SimError> {
        let dev = &self.device;
        // Same lane labeling as the explicit path: migration and prefetch
        // traffic rides the `h2d` lane, writebacks and evictions `d2h`,
        // kernels and their fault stalls `compute`.
        let _labels = LabelScope::new();
        let mut space = UvmSpace::new(dev.uvm);
        // Lay buffers out at chunk-aligned, non-overlapping bases.
        let bases: Vec<Addr> = (0..buffers.len())
            .map(|i| Addr::new((i as u64 + 1) << 42))
            .collect();
        for (b, &base) in buffers.iter().zip(&bases) {
            space.managed_alloc(base, b.bytes);
        }

        let mut memcpy = Nanos::ZERO;
        let mut kernel = Nanos::ZERO;

        // Workload-level access regularity: the least regular kernel
        // decides how well the prefetcher does (§4.1.2).
        let regularity = kernels
            .iter()
            .map(|k| k.regularity())
            .max_by(|a, b| {
                a.residual_fault_fraction()
                    .partial_cmp(&b.residual_fault_fraction())
                    .expect("finite fractions")
            })
            .expect("at least one kernel");
        let prefetch_model = PrefetchModel::conflicting(program.prefetch_conflict());
        let coverage = prefetch_model.effective_coverage(regularity);

        let translation = if mode.uses_prefetch() {
            // Prefetch resolves most mappings ahead of time; a residue of
            // page-walk overhead remains.
            1.0 + (regularity.uvm_translation_penalty() - 1.0) * 0.35
        } else {
            regularity.uvm_translation_penalty()
        };
        // Prefetch only warms the L2 for access patterns it can actually
        // run ahead of; the quartic keys the benefit sharply on
        // regularity (irregular workloads see almost none — the paper's
        // lud observation).
        let l2_warm = if mode.uses_prefetch() {
            dev.l2_warm_fraction() * coverage.powi(4)
        } else {
            0.0
        };
        // Managed memory translates through the GPU's UVM page tables:
        // demand-migrated runs walk 64 KB mappings; prefetched ranges
        // coalesce into 2 MB mappings with cheap cached walks.
        let tlb = if mode.uses_prefetch() {
            hetsim_mem::tlb::TlbConfig {
                page_bytes: 2 << 20,
                walk_cycles: 200.0,
                ..hetsim_mem::tlb::TlbConfig::a100_uvm()
            }
        } else {
            hetsim_mem::tlb::TlbConfig::a100_uvm()
        };
        let env = ExecEnv::new(translation, l2_warm).with_tlb(tlb);

        // Explicit prefetch of every input buffer before the kernels.
        if mode.uses_prefetch() {
            set_label(Dim::Stream, "h2d");
            for (b, &base) in buffers.iter().zip(&bases) {
                if b.role.is_input() {
                    let t = space.prefetch_range(base, b.bytes, coverage, &dev.link);
                    counters
                        .transfer
                        .record_prefetch((b.bytes as f64 * coverage) as u64, t);
                    trace_phase(Category::Memcpy, format!("prefetch({})", b.name), t);
                    memcpy += t;
                    let extra = ctx.transfer(&format!("prefetch({})", b.name), t)?;
                    trace_phase(
                        Category::Memcpy,
                        format!("chaos_retry_prefetch({})", b.name),
                        extra,
                    );
                }
            }
        }

        for (ki, k) in kernels.iter().enumerate() {
            // Inter-kernel prefetch conflict: each sweep of a later kernel
            // finds part of the shared data displaced by prefetch decisions
            // made for the other kernel (nw). The displace/refault cycle
            // repeats as the kernels alternate.
            let mut conflict_refault = hetsim_uvm::fault::FaultReport::default();
            if ki > 0 && mode.uses_prefetch() && program.prefetch_conflict() < 1.0 {
                set_label(Dim::Stream, "h2d");
                let displaced_fraction = 1.0 - program.prefetch_conflict();
                let rounds = k.invocations().clamp(1, 4);
                for _ in 0..rounds {
                    for (b, &base) in buffers.iter().zip(&bases) {
                        space.displace_fraction(base, b.bytes, displaced_fraction);
                        let fr = space.demand_touch_range(
                            base,
                            b.bytes,
                            b.role.is_output(),
                            true,
                            &dev.link,
                        );
                        conflict_refault = conflict_refault.merge(fr);
                    }
                }
            }

            set_label(Dim::Stream, "compute");
            let style = mode.kernel_style(k.standard_style());
            let r = self.executor.execute(*k, style, &env);
            let inv = k.invocations().max(1);
            trace_phase(Category::Kernel, k.name().to_string(), r.time * inv);
            kernel += r.time * inv;
            merge_kernel_counters(counters, &r, inv);
            let extra = ctx.kernel(k.name(), r.time * inv)?;
            trace_phase(
                Category::Kernel,
                format!("chaos_replay({})", k.name()),
                extra,
            );

            // Demand-fault whatever the kernel touches that is not yet
            // resident: through the kernel's temporal touch sequence when
            // the program models one (irregular workloads), else through
            // the address-ordered range walk.
            set_label(Dim::Stream, "h2d");
            let mut stall = conflict_refault.stall;
            trace_phase(
                Category::Memcpy,
                "conflict_migration",
                conflict_refault.transfer,
            );
            memcpy += conflict_refault.transfer;
            counters.transfer.record_migration(
                conflict_refault.chunks * dev.uvm.chunk_size,
                conflict_refault.transfer,
            );
            let mut sequenced = false;
            for inv in 0..k.invocations().min(MAX_SEQUENCED_ROUNDS) {
                let Some(touches) = program.page_touches(ki, inv, dev.uvm.chunk_size) else {
                    break;
                };
                sequenced = true;
                let seq = resolve_touches(&touches, buffers, &bases, dev.uvm.chunk_size);
                let fr = space.demand_touch_sequence(&seq, &dev.link);
                stall += fr.stall;
                counters
                    .transfer
                    .record_migration(fr.chunks * dev.uvm.chunk_size, fr.transfer);
                trace_phase(
                    Category::Memcpy,
                    format!("migration({}#{inv})", k.name()),
                    fr.transfer,
                );
                memcpy += fr.transfer;
            }
            if !sequenced {
                for (b, &base) in buffers.iter().zip(&bases) {
                    if matches!(b.role, crate::program::BufferRole::Scratch) {
                        continue;
                    }
                    let fr = space.demand_touch_range(
                        base,
                        b.bytes,
                        b.role.is_output(),
                        b.role.is_input(),
                        &dev.link,
                    );
                    stall += fr.stall;
                    let t = fr.transfer;
                    counters
                        .transfer
                        .record_migration(fr.chunks * dev.uvm.chunk_size, t);
                    trace_phase(Category::Memcpy, format!("migration({})", b.name), t);
                    memcpy += t;
                }
            }
            // The part of fault servicing the SMs cannot hide shows up as
            // kernel-time inflation; trace it as its own kernel-category
            // span so the stall cost is separable in the viewer.
            set_label(Dim::Stream, "compute");
            let exposed = stall.scale(1.0 / dev.fault_stall_overlap);
            trace_phase(Category::Kernel, "fault_stall", exposed);
            kernel += exposed;

            // Injected fault-storm pressure: synthetic refaults against
            // this kernel's working set, costed through the same batched
            // fault-servicing model as real far faults (stall exposed as
            // kernel inflation, migration traffic as transfer time), but
            // never mutating the UVM space — so the storm stays a pure
            // additive overhead.
            if ctx.active() {
                let chunk = dev.uvm.chunk_size.max(1);
                let refaults = ctx.storm_refaults(program.footprint().div_ceil(chunk).max(1));
                if refaults > 0 {
                    let storm_stall = dev
                        .uvm
                        .fault
                        .service_stall(refaults)
                        .scale(1.0 / dev.fault_stall_overlap);
                    let storm_transfer = dev
                        .link
                        .transfer_time(LinkPath::DemandMigration, refaults * chunk);
                    ctx.record_storm(storm_stall, storm_transfer);
                    trace_phase(Category::Kernel, "chaos_storm_stall", storm_stall);
                    set_label(Dim::Stream, "h2d");
                    trace_phase(Category::Memcpy, "chaos_storm_migration", storm_transfer);
                    set_label(Dim::Stream, "compute");
                }
            }
        }

        // Results flow back: write back dirty output chunks.
        set_label(Dim::Stream, "d2h");
        for (b, &base) in buffers.iter().zip(&bases) {
            if b.role.is_output() {
                let path = if mode.uses_prefetch() {
                    LinkPath::BulkPrefetch
                } else {
                    LinkPath::DemandMigration
                };
                let t = space.writeback_dirty(base, b.bytes, path, &dev.link);
                counters.transfer.record_writeback(b.bytes, t);
                trace_phase(Category::Memcpy, format!("writeback({})", b.name), t);
                memcpy += t;
                let extra = ctx.transfer(&format!("writeback({})", b.name), t)?;
                trace_phase(
                    Category::Memcpy,
                    format!("chaos_retry_writeback({})", b.name),
                    extra,
                );
            }
        }

        // Oversubscription evictions write dirty chunks back over the
        // link; charge their DMA time as transfer.
        trace_phase(
            Category::Memcpy,
            "eviction_transfer",
            space.eviction_transfer(),
        );
        memcpy += space.eviction_transfer();

        counters.uvm += space.counters();
        Ok((memcpy, kernel))
    }
}

/// Derives achieved occupancy from the kernel's share of total time.
fn set_achieved_occupancy(report: &mut RunReport) {
    let kernel_share = report.kernel.as_nanos() as f64 / report.total().as_nanos().max(1) as f64;
    let theoretical = report.counters.occupancy.theoretical();
    report.counters.occupancy = Occupancy::new(theoretical, kernel_share * theoretical);
}

fn merge_kernel_counters(
    counters: &mut CounterSet,
    r: &hetsim_gpu::exec::KernelResult,
    invocations: u64,
) {
    counters.inst += r.inst.scale(invocations as f64);
    counters.l1 += r.l1;
    counters.l2 += r.l2;
    counters.occupancy = Occupancy::new(
        counters
            .occupancy
            .theoretical()
            .max(r.theoretical_occupancy),
        counters.occupancy.achieved(),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{BufferRole, BufferSpec};
    use hetsim_gpu::kernel::{KernelModel, KernelStyle, LaunchConfig, TileOps};
    use hetsim_mem::addr::MemAccess;
    use hetsim_uvm::prefetch::Regularity;

    /// A minimal streaming program for runtime tests.
    struct TestProgram {
        kernel: TestKernel,
        bytes: u64,
        conflict: f64,
    }

    struct TestKernel {
        launch: LaunchConfig,
        lines_per_tile: u64,
        regularity: Regularity,
    }

    impl TestProgram {
        fn new(bytes: u64) -> Self {
            TestProgram {
                kernel: TestKernel {
                    launch: LaunchConfig::new(1024, 256, 32 * 1024),
                    lines_per_tile: 32,
                    regularity: Regularity::Regular,
                },
                bytes,
                conflict: 1.0,
            }
        }
    }

    impl KernelModel for TestKernel {
        fn name(&self) -> &str {
            "test_kernel"
        }
        fn launch(&self) -> LaunchConfig {
            self.launch
        }
        fn tiles_per_block(&self) -> u64 {
            8
        }
        fn stream_accesses(&self, block: u64, tile: u64, out: &mut Vec<MemAccess>) {
            let base = (block * 8 + tile) * self.lines_per_tile * 128;
            for i in 0..self.lines_per_tile {
                out.push(MemAccess::global_load(base + i * 128));
            }
        }
        fn local_accesses(&self, block: u64, tile: u64, out: &mut Vec<MemAccess>) {
            let base = (1u64 << 41) + (block * 8 + tile) * self.lines_per_tile * 128;
            for i in 0..self.lines_per_tile {
                out.push(MemAccess::global_store(base + i * 128));
            }
        }
        fn tile_ops(&self) -> TileOps {
            TileOps::new(2048.0, 1024.0, 256.0)
        }
        fn regularity(&self) -> Regularity {
            self.regularity
        }
        fn standard_style(&self) -> KernelStyle {
            KernelStyle::StagedSync
        }
    }

    impl GpuProgram for TestProgram {
        fn name(&self) -> &str {
            "test_program"
        }
        fn buffers(&self) -> Vec<BufferSpec> {
            vec![
                BufferSpec::new("in", self.bytes / 2, BufferRole::Input),
                BufferSpec::new("out", self.bytes / 2, BufferRole::Output),
            ]
        }
        fn kernels(&self) -> Vec<&dyn KernelModel> {
            vec![&self.kernel]
        }
        fn prefetch_conflict(&self) -> f64 {
            self.conflict
        }
    }

    fn runner() -> Runner {
        Runner::new(Device::a100_epyc())
    }

    const MB: u64 = 1 << 20;

    #[test]
    fn deterministic_per_run_index() {
        let p = TestProgram::new(64 * MB);
        let r = runner();
        let a = r.run(&p, TransferMode::Standard, 3);
        let b = r.run(&p, TransferMode::Standard, 3);
        assert_eq!(a, b);
        let c = r.run(&p, TransferMode::Standard, 4);
        assert_ne!(a.total(), c.total(), "different run index, different noise");
    }

    #[test]
    fn breakdown_components_positive() {
        let p = TestProgram::new(64 * MB);
        for mode in TransferMode::ALL {
            let rep = runner().run(&p, mode, 0);
            assert!(rep.alloc > Nanos::ZERO, "{mode}: alloc");
            assert!(rep.memcpy > Nanos::ZERO, "{mode}: memcpy");
            assert!(rep.kernel > Nanos::ZERO, "{mode}: kernel");
            assert!(rep.system > Nanos::ZERO, "{mode}: system");
        }
    }

    #[test]
    fn uvm_demand_saves_memcpy_but_inflates_kernel() {
        let p = TestProgram::new(256 * MB);
        let r = runner();
        let std = r.run(&p, TransferMode::Standard, 0);
        let uvm = r.run(&p, TransferMode::Uvm, 0);
        assert!(
            uvm.memcpy < std.memcpy,
            "uvm memcpy {} !< standard {}",
            uvm.memcpy,
            std.memcpy
        );
        assert!(
            uvm.kernel > std.kernel,
            "uvm kernel {} !> standard {}",
            uvm.kernel,
            std.kernel
        );
    }

    #[test]
    fn prefetch_saves_more_memcpy_than_demand() {
        let p = TestProgram::new(256 * MB);
        let r = runner();
        let uvm = r.run(&p, TransferMode::Uvm, 0);
        let pf = r.run(&p, TransferMode::UvmPrefetch, 0);
        assert!(pf.memcpy < uvm.memcpy);
        assert!(pf.kernel < uvm.kernel, "fewer faults, fewer stalls");
    }

    #[test]
    fn uvm_faults_appear_in_counters() {
        let p = TestProgram::new(64 * MB);
        let rep = runner().run(&p, TransferMode::Uvm, 0);
        assert!(rep.counters.uvm.page_faults() > 0);
        assert!(rep.counters.transfer.migrations() > 0);
        let pf = runner().run(&p, TransferMode::UvmPrefetch, 0);
        assert!(pf.counters.uvm.pages_prefetched() > 0);
        assert!(pf.counters.uvm.page_faults() < rep.counters.uvm.page_faults());
    }

    #[test]
    fn async_mode_inflates_control_instructions() {
        let p = TestProgram::new(64 * MB);
        let r = runner();
        let std = r.run(&p, TransferMode::Standard, 0);
        let asy = r.run(&p, TransferMode::Async, 0);
        use hetsim_counters::InstClass;
        assert!(
            asy.counters.inst.get(InstClass::Control) > std.counters.inst.get(InstClass::Control)
        );
    }

    #[test]
    fn conflict_degrades_prefetch() {
        let mut clean = TestProgram::new(128 * MB);
        clean.conflict = 1.0;
        let mut conflicted = TestProgram::new(128 * MB);
        conflicted.conflict = 0.6;
        let r = runner();
        let a = r.run(&clean, TransferMode::UvmPrefetch, 0);
        let b = r.run(&conflicted, TransferMode::UvmPrefetch, 0);
        assert!(
            b.kernel >= a.kernel,
            "conflicted {} !>= clean {}",
            b.kernel,
            a.kernel
        );
    }

    #[test]
    fn occupancy_improves_when_transfer_shrinks() {
        let p = TestProgram::new(256 * MB);
        let r = runner();
        let std = r.run(&p, TransferMode::Standard, 0);
        let pfa = r.run(&p, TransferMode::UvmPrefetchAsync, 0);
        assert!(
            pfa.counters.occupancy.achieved() > std.counters.occupancy.achieved(),
            "pfa {} !> std {}",
            pfa.counters.occupancy.achieved(),
            std.counters.occupancy.achieved()
        );
    }

    #[test]
    fn unarmed_try_run_base_matches_run_base() {
        let p = TestProgram::new(64 * MB);
        let r = runner();
        for mode in TransferMode::ALL {
            let chaos = r.try_run_base(&p, mode).expect("unarmed run succeeds");
            assert_eq!(chaos.report, r.run_base(&p, mode), "{mode}");
            assert_eq!(chaos.requested_mode, mode);
            assert_eq!(chaos.effective_mode, mode);
            assert_eq!(chaos.chaos.injected(), 0);
            assert_eq!(chaos.chaos.overhead.total(), Nanos::ZERO);
        }
    }

    #[test]
    fn recovered_runs_are_separable_from_fault_free_baselines() {
        // The invariant the property suite leans on: subtract the booked
        // per-component overhead from a recovered run and the fault-free
        // base run of the effective mode reappears exactly — counters
        // included.
        let p = TestProgram::new(64 * MB);
        let r = runner().with_chaos(FaultPlan::light(7), RecoveryPolicy::default());
        for mode in TransferMode::ALL {
            let out = r.try_run_base(&p, mode).expect("light plan recovers");
            let base = r.run_base(&p, out.effective_mode);
            let oh = out.chaos.overhead;
            let mut stripped = out.report.clone();
            stripped.alloc -= oh.alloc;
            stripped.memcpy -= oh.memcpy;
            stripped.kernel -= oh.kernel;
            stripped.system -= oh.system;
            assert_eq!(stripped, base, "{mode}: separability");
            assert_eq!(out.report.counters, base.counters, "{mode}: counters");
        }
    }

    #[test]
    fn same_seed_same_chaos_outcome() {
        let p = TestProgram::new(64 * MB);
        let r = runner().with_chaos(FaultPlan::heavy(11), RecoveryPolicy::default());
        let a = r.try_run_base(&p, TransferMode::UvmPrefetchAsync);
        let b = r.try_run_base(&p, TransferMode::UvmPrefetchAsync);
        assert_eq!(a, b);
    }

    #[test]
    fn fault_storm_degrades_down_the_mode_ladder() {
        // storm() pushes ~0.9 refaults per chunk-kernel site, far above
        // the default 0.5 thrash threshold: every UVM rung thrashes and
        // the run lands on `standard`, with the abandoned attempts
        // charged to the system component.
        let p = TestProgram::new(64 * MB);
        let r = runner().with_chaos(FaultPlan::storm(3), RecoveryPolicy::default());
        let out = r
            .try_run_base(&p, TransferMode::UvmPrefetchAsync)
            .expect("degradation recovers the run");
        assert!(out.degraded());
        assert_eq!(out.effective_mode, TransferMode::Standard);
        assert_eq!(
            out.chaos
                .degradations
                .iter()
                .filter(|(from, _)| from != "pinned")
                .count(),
            3,
            "three rungs walked: {:?}",
            out.chaos.degradations
        );
        assert!(out.chaos.storm_refaults > 0);
        // The abandoned attempts are real sim time on top of the final
        // attempt's fault-free baseline.
        let base = r.run_base(&p, TransferMode::Standard);
        assert!(out.report.total() > base.total());
        assert!(out.report.system > base.system);
    }

    #[test]
    fn storm_without_degradation_stays_on_requested_mode() {
        let policy = RecoveryPolicy {
            degrade_modes: false,
            ..RecoveryPolicy::default()
        };
        let p = TestProgram::new(64 * MB);
        let r = runner().with_chaos(FaultPlan::storm(3), policy);
        let out = r
            .try_run_base(&p, TransferMode::Uvm)
            .expect("storm is absorbed as stalls when degradation is off");
        assert!(!out.degraded());
        assert!(out.chaos.storm_refaults > 0);
        assert!(out.chaos.overhead.kernel > Nanos::ZERO);
        assert!(out.chaos.overhead.memcpy > Nanos::ZERO);
    }

    #[test]
    fn impossible_plan_is_rejected_up_front() {
        let p = TestProgram::new(64 * MB);
        let r = runner().with_chaos(FaultPlan::light(1), RecoveryPolicy::brittle());
        match r.try_run_base(&p, TransferMode::Standard).unwrap_err() {
            SimError::InvalidPlan(msg) => {
                assert!(msg.contains("retry budget of 0"), "{msg}")
            }
            other => panic!("expected InvalidPlan, got {other:?}"),
        }
    }

    #[test]
    fn exhausted_budgets_surface_typed_errors() {
        // High fault rate against a one-retry budget: across a few seeds
        // at least one run must exhaust the budget, and every failure is
        // a typed recovery error — never a panic.
        let p = TestProgram::new(64 * MB);
        let policy = RecoveryPolicy {
            max_retries: 1,
            max_replays: 1,
            ..RecoveryPolicy::default()
        };
        let mut exhausted = 0;
        for seed in 0..8 {
            let r = runner().with_chaos(FaultPlan::heavy(seed), policy);
            match r.try_run_base(&p, TransferMode::Standard) {
                Ok(_) => {}
                Err(SimError::RetryExhausted { attempts, .. }) => {
                    assert_eq!(attempts, 2);
                    exhausted += 1;
                }
                Err(SimError::ReplayExhausted { .. }) => exhausted += 1,
                Err(other) => panic!("unexpected error kind: {other:?}"),
            }
        }
        assert!(exhausted > 0, "heavy plan never exhausted a 1-deep budget");
    }

    #[test]
    fn pinned_failure_without_fallback_is_typed() {
        let plan = FaultPlan {
            seed: 0,
            transfer_fault_rate: 0.0,
            kernel_corruption_rate: 0.0,
            pinned_fail_rate: 0.99,
            storm_pressure: 0.0,
        };
        let policy = RecoveryPolicy {
            pinned_fallback: false,
            ..RecoveryPolicy::default()
        };
        let p = TestProgram::new(64 * MB);
        let mut failed = 0;
        for seed in 0..8 {
            let r = runner().with_chaos(FaultPlan { seed, ..plan }, policy);
            match r.try_run_base(&p, TransferMode::Async) {
                Ok(out) => assert_eq!(out.chaos.pinned_failures, 0),
                Err(SimError::PinnedAllocFailed { site }) => {
                    assert_eq!(site, "staging");
                    failed += 1;
                }
                Err(other) => panic!("unexpected error kind: {other:?}"),
            }
        }
        assert!(failed > 0, "0.99 pinned-fail rate never fired in 8 seeds");
    }

    #[test]
    fn pinned_fallback_books_alloc_overhead() {
        let plan = FaultPlan {
            seed: 0,
            transfer_fault_rate: 0.0,
            kernel_corruption_rate: 0.0,
            pinned_fail_rate: 0.99,
            storm_pressure: 0.0,
        };
        let p = TestProgram::new(64 * MB);
        let mut fell_back = 0;
        for seed in 0..8 {
            let r = runner().with_chaos(FaultPlan { seed, ..plan }, RecoveryPolicy::default());
            let out = r
                .try_run_base(&p, TransferMode::Async)
                .expect("fallback absorbs the failure");
            if out.chaos.pinned_failures > 0 {
                fell_back += 1;
                assert!(out.chaos.overhead.alloc > Nanos::ZERO);
                assert!(out
                    .chaos
                    .degradations
                    .contains(&("pinned".to_string(), "pageable".to_string())));
            }
        }
        assert!(fell_back > 0);
    }

    #[test]
    fn kernel_less_program_is_invalid_not_a_panic() {
        struct Empty;
        impl GpuProgram for Empty {
            fn name(&self) -> &str {
                "empty"
            }
            fn buffers(&self) -> Vec<BufferSpec> {
                vec![BufferSpec::new("b", MB, BufferRole::Input)]
            }
            fn kernels(&self) -> Vec<&dyn KernelModel> {
                Vec::new()
            }
        }
        match runner().try_run_base(&Empty, TransferMode::Standard) {
            Err(SimError::InvalidProgram(msg)) => assert!(msg.contains("empty"), "{msg}"),
            other => panic!("expected InvalidProgram, got {other:?}"),
        }
    }
}
