//! Run timelines: a renderable record of what occupied which engine when.
//!
//! The paper's Figure 14 is exactly this kind of picture — boxes for
//! `cudaMallocManaged`, H-D transfers, kernel computation, and `cudaFree`
//! laid out against time, for the current and the proposed pipeline. A
//! [`Timeline`] collects labelled phases per lane and renders an ASCII
//! Gantt chart, so examples and the inter-job model can *show* their
//! schedules instead of only summing them.

use crate::stream::ScheduleOutcome;
use hetsim_engine::time::{Nanos, SimTime};
use hetsim_trace::{EventKind, Trace};
use std::fmt;

/// One phase on one lane.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Phase {
    lane: String,
    label: String,
    start: SimTime,
    end: SimTime,
}

/// A multi-lane execution timeline.
///
/// # Example
///
/// ```
/// use hetsim_runtime::timeline::Timeline;
/// use hetsim_engine::time::{Nanos, SimTime};
///
/// let mut t = Timeline::new();
/// t.record("cpu", "alloc", SimTime::ZERO, SimTime::from_nanos(500));
/// t.record("gpu", "kernel", SimTime::from_nanos(500), SimTime::from_nanos(1_500));
/// let chart = t.render(40);
/// assert!(chart.contains("cpu"));
/// assert!(chart.contains("gpu"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    phases: Vec<Phase>,
}

impl Timeline {
    /// An empty timeline.
    pub fn new() -> Self {
        Timeline::default()
    }

    /// Records a phase `[start, end)` on `lane`. Zero-length phases are
    /// kept (they render as a single tick) so instantaneous events stay
    /// visible.
    pub fn record<L: Into<String>, S: Into<String>>(
        &mut self,
        lane: L,
        label: S,
        start: SimTime,
        end: SimTime,
    ) -> &mut Self {
        assert!(end >= start, "phase ends before it starts");
        self.phases.push(Phase {
            lane: lane.into(),
            label: label.into(),
            start,
            end,
        });
        self
    }

    /// Records a phase starting at `start` lasting `dur`.
    pub fn record_for<L: Into<String>, S: Into<String>>(
        &mut self,
        lane: L,
        label: S,
        start: SimTime,
        dur: Nanos,
    ) -> &mut Self {
        self.record(lane, label, start, start + dur)
    }

    /// Builds a Gantt view over a recorded trace: one lane per sim track,
    /// one phase per span (instants become zero-length phases, counters and
    /// host-clock tracks are skipped). This is how the Figure 14 pictures
    /// are produced — the chart is a *view* of the same events the Chrome
    /// exporter sees, never a separate bookkeeping path.
    pub fn from_trace(trace: &Trace) -> Timeline {
        let mut t = Timeline::new();
        for ev in trace.events() {
            if trace.tracks()[ev.track.0 as usize].host {
                continue;
            }
            let dur = match ev.kind {
                EventKind::Span { dur } => dur,
                EventKind::Instant => 0,
                EventKind::Counter { .. } => continue,
            };
            t.record(
                trace.track_name(ev.track),
                ev.name.as_ref(),
                SimTime::from_nanos(ev.ts),
                SimTime::from_nanos(ev.ts + dur),
            );
        }
        t
    }

    /// Imports a stream-schedule outcome: one lane per engine, derived
    /// from the schedule's recorded trace.
    pub fn from_schedule(outcome: &ScheduleOutcome) -> Timeline {
        Timeline::from_trace(outcome.trace())
    }

    /// Number of recorded phases.
    pub fn len(&self) -> usize {
        self.phases.len()
    }

    /// Whether nothing is recorded.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// The end of the last phase.
    pub fn horizon(&self) -> SimTime {
        self.phases
            .iter()
            .map(|p| p.end)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Renders an ASCII Gantt chart `width` characters wide.
    ///
    /// Each lane is one row; each phase paints its span with the first
    /// letter of its label (`#` if empty). A scale line shows the horizon.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn render(&self, width: usize) -> String {
        assert!(width > 0, "chart needs non-zero width");
        let horizon = self.horizon().as_nanos().max(1);
        let mut lanes: Vec<String> = self.phases.iter().map(|p| p.lane.clone()).collect();
        lanes.dedup();
        let mut seen = std::collections::HashSet::new();
        lanes.retain(|l| seen.insert(l.clone()));
        let name_w = lanes.iter().map(|l| l.len()).max().unwrap_or(0).max(4);

        let mut out = String::new();
        for lane in &lanes {
            let mut row = vec![b'.'; width];
            for p in self.phases.iter().filter(|p| &p.lane == lane) {
                let a = (p.start.as_nanos() as u128 * width as u128 / horizon as u128) as usize;
                let b = (p.end.as_nanos() as u128 * width as u128 / horizon as u128) as usize;
                let b = b.max(a + 1).min(width);
                let ch = p.label.bytes().next().unwrap_or(b'#');
                for slot in &mut row[a..b] {
                    *slot = ch;
                }
            }
            out.push_str(&format!(
                "{lane:<name_w$} |{}|\n",
                String::from_utf8_lossy(&row)
            ));
        }
        out.push_str(&format!(
            "{:<name_w$} 0 {:>w$}\n",
            "",
            Nanos::from_nanos(horizon).to_string(),
            w = width
        ));
        out
    }
}

impl fmt::Display for Timeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render(64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{Engine, StreamId, StreamSchedule};

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn records_and_horizon() {
        let mut tl = Timeline::new();
        tl.record("cpu", "alloc", t(0), t(100));
        tl.record_for("gpu", "kernel", t(100), Nanos::from_nanos(200));
        assert_eq!(tl.len(), 2);
        assert_eq!(tl.horizon(), t(300));
        assert!(!tl.is_empty());
    }

    #[test]
    fn render_paints_lanes_in_order() {
        let mut tl = Timeline::new();
        tl.record("gpu", "kernel", t(50), t(100));
        tl.record("cpu", "alloc", t(0), t(50));
        let chart = tl.render(20);
        let lines: Vec<&str> = chart.lines().collect();
        assert!(lines[0].starts_with("gpu"), "first-recorded lane first");
        assert!(lines[1].starts_with("cpu"));
        assert!(lines[0].contains('k'));
        assert!(lines[1].contains('a'));
    }

    #[test]
    fn zero_length_phase_still_visible() {
        let mut tl = Timeline::new();
        tl.record("cpu", "sync", t(10), t(10));
        tl.record("cpu", "work", t(0), t(100));
        let chart = tl.render(10);
        assert!(chart.contains('s'));
    }

    #[test]
    fn from_schedule_matches_engines() {
        let mut s = StreamSchedule::new();
        s.push(StreamId(0), Engine::CopyH2D, Nanos::from_micros(1), "h2d");
        s.push(
            StreamId(0),
            Engine::Compute,
            Nanos::from_micros(1),
            "kernel",
        );
        let tl = Timeline::from_schedule(&s.run());
        assert_eq!(tl.len(), 2);
        let chart = tl.render(16);
        assert!(chart.contains("h2d"));
        assert!(chart.contains("compute"));
    }

    #[test]
    fn empty_timeline_renders_scale_only() {
        let tl = Timeline::new();
        let chart = tl.render(10);
        assert!(chart.contains('0'));
        assert_eq!(tl.horizon(), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "ends before it starts")]
    fn inverted_phase_panics() {
        let mut tl = Timeline::new();
        tl.record("cpu", "bad", t(10), t(5));
    }
}
