//! The five UVM/Async-Memcpy configurations of the paper (§3.1.3).

use hetsim_gpu::kernel::KernelStyle;
use std::fmt;

/// One of the paper's five data-transfer configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransferMode {
    /// Explicit `cudaMalloc` + `cudaMemcpy`, no Async Memcpy.
    Standard,
    /// Explicit transfers, `cp.async` kernels.
    Async,
    /// `cudaMallocManaged`, demand migration only.
    Uvm,
    /// Managed memory with explicit `cudaMemPrefetchAsync`.
    UvmPrefetch,
    /// Managed memory with prefetch *and* `cp.async` kernels.
    UvmPrefetchAsync,
}

impl TransferMode {
    /// The five modes in the paper's presentation order.
    pub const ALL: [TransferMode; 5] = [
        TransferMode::Standard,
        TransferMode::Async,
        TransferMode::Uvm,
        TransferMode::UvmPrefetch,
        TransferMode::UvmPrefetchAsync,
    ];

    /// The identifier used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            TransferMode::Standard => "standard",
            TransferMode::Async => "async",
            TransferMode::Uvm => "uvm",
            TransferMode::UvmPrefetch => "uvm_prefetch",
            TransferMode::UvmPrefetchAsync => "uvm_prefetch_async",
        }
    }

    /// Whether memory is managed (UVM).
    pub fn uses_uvm(self) -> bool {
        matches!(
            self,
            TransferMode::Uvm | TransferMode::UvmPrefetch | TransferMode::UvmPrefetchAsync
        )
    }

    /// Whether explicit range prefetch is issued before kernels.
    pub fn uses_prefetch(self) -> bool {
        matches!(
            self,
            TransferMode::UvmPrefetch | TransferMode::UvmPrefetchAsync
        )
    }

    /// Whether kernels are rewritten to the `cp.async` pipeline.
    pub fn uses_async_copy(self) -> bool {
        matches!(self, TransferMode::Async | TransferMode::UvmPrefetchAsync)
    }

    /// The next rung down the graceful-degradation ladder, the path real
    /// driver stacks walk under sustained fault pressure: managed modes
    /// shed their most fragile feature first
    /// (`uvm_prefetch_async` → `uvm_prefetch` → `uvm` → `standard`) and
    /// `async` falls back to the fully synchronous baseline. `standard`
    /// has nowhere left to go.
    pub fn degraded(self) -> Option<TransferMode> {
        match self {
            TransferMode::UvmPrefetchAsync => Some(TransferMode::UvmPrefetch),
            TransferMode::UvmPrefetch => Some(TransferMode::Uvm),
            TransferMode::Uvm | TransferMode::Async => Some(TransferMode::Standard),
            TransferMode::Standard => None,
        }
    }

    /// The kernel style this mode runs a kernel with, given the kernel's
    /// hand-written standard style.
    pub fn kernel_style(self, standard: KernelStyle) -> KernelStyle {
        if self.uses_async_copy() {
            KernelStyle::StagedAsync
        } else {
            standard
        }
    }
}

impl fmt::Display for TransferMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper() {
        let names: Vec<&str> = TransferMode::ALL.iter().map(|m| m.name()).collect();
        assert_eq!(
            names,
            vec![
                "standard",
                "async",
                "uvm",
                "uvm_prefetch",
                "uvm_prefetch_async"
            ]
        );
    }

    #[test]
    fn feature_matrix() {
        use TransferMode::*;
        assert!(!Standard.uses_uvm() && !Standard.uses_prefetch() && !Standard.uses_async_copy());
        assert!(!Async.uses_uvm() && Async.uses_async_copy());
        assert!(Uvm.uses_uvm() && !Uvm.uses_prefetch() && !Uvm.uses_async_copy());
        assert!(UvmPrefetch.uses_uvm() && UvmPrefetch.uses_prefetch());
        assert!(!UvmPrefetch.uses_async_copy());
        assert!(
            UvmPrefetchAsync.uses_uvm()
                && UvmPrefetchAsync.uses_prefetch()
                && UvmPrefetchAsync.uses_async_copy()
        );
    }

    #[test]
    fn degradation_ladder_terminates_at_standard() {
        use TransferMode::*;
        assert_eq!(UvmPrefetchAsync.degraded(), Some(UvmPrefetch));
        assert_eq!(UvmPrefetch.degraded(), Some(Uvm));
        assert_eq!(Uvm.degraded(), Some(Standard));
        assert_eq!(Async.degraded(), Some(Standard));
        assert_eq!(Standard.degraded(), None);
        // Every mode reaches the floor in bounded steps.
        for mut m in TransferMode::ALL {
            let mut steps = 0;
            while let Some(next) = m.degraded() {
                m = next;
                steps += 1;
                assert!(steps <= 4);
            }
            assert_eq!(m, Standard);
        }
    }

    #[test]
    fn style_mapping() {
        use KernelStyle::*;
        assert_eq!(TransferMode::Standard.kernel_style(Direct), Direct);
        assert_eq!(TransferMode::Uvm.kernel_style(StagedSync), StagedSync);
        assert_eq!(TransferMode::Async.kernel_style(Direct), StagedAsync);
        assert_eq!(
            TransferMode::UvmPrefetchAsync.kernel_style(StagedSync),
            StagedAsync
        );
    }

    #[test]
    fn display_matches_name() {
        for m in TransferMode::ALL {
            assert_eq!(m.to_string(), m.name());
        }
    }
}
